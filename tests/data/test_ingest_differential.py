"""Acceptance tests: streamed chunked fit ≡ in-memory fit, bit for bit.

The contract (ISSUE / docs/data_guide.md): for any chunk size, with or
without a mid-run kill and resume, the streaming ingest produces the
*identical* fitted pipeline (vocabulary id maps, median fill values,
quantile bucket edges) and the *identical* encoded dataset (x, y,
x_cross, cardinalities, schema) as ``read_csv`` + an in-memory
``CTRPipeline.fit_transform``.  And under k injected corrupt rows, the
quarantine sidecar, the ``ingest.quarantined`` counter and the report
all account for exactly k — no more, no less.
"""

import json

import numpy as np
import pytest

from repro.data import CTRPipeline, IngestConfig, ingest_file, read_csv
from repro.data.ingest import ChunkedIngestor
from repro.obs.metrics import MetricsRegistry
from repro.resilience import CrashAtChunk, InjectedCrash
from repro.resilience.faults import GARBAGE_LINES, inject_garbage_lines

CATEGORICAL = ["C1", "C2", "C3"]
CONTINUOUS = ["I1", "I2"]
HEADER = "label," + ",".join(CONTINUOUS + CATEGORICAL)
PIPELINE_KW = dict(categorical=CATEGORICAL, continuous=CONTINUOUS,
                   min_count=2, num_buckets=5, cross_min_count=2)


def make_rows(n=600, seed=0):
    """Dirty-free but statistically awkward rows: missing continuous
    entries, negative and float values, ties, rare categories."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        label = rng.integers(0, 2)
        i1 = rng.choice(["", "-3", "0", "1", "2", "2.5", "7", "40"],
                        p=[.1, .1, .2, .2, .15, .1, .1, .05])
        i2 = str(rng.integers(0, 25))
        c1 = f"a{rng.integers(0, 9)}"
        c2 = f"b{rng.integers(0, 40)}"  # long tail -> min_count bites
        c3 = rng.choice(["x", "y", "z", ""], p=[.4, .3, .2, .1])
        rows.append(f"{label},{i1},{i2},{c1},{c2},{c3}")
    return rows


def write_file(path, rows):
    path.write_text(HEADER + "\n" + "\n".join(rows) + "\n")
    return path


def in_memory_reference(path):
    pipeline = CTRPipeline(**PIPELINE_KW)
    dataset = pipeline.fit_transform(read_csv(path))
    return pipeline, dataset


def assert_bit_identical(result, ref_pipeline, ref_dataset):
    dataset = result.dataset
    assert np.array_equal(dataset.x, ref_dataset.x)
    assert np.array_equal(dataset.y, ref_dataset.y)
    assert np.array_equal(dataset.x_cross, ref_dataset.x_cross)
    assert dataset.cardinalities == ref_dataset.cardinalities
    assert dataset.cross_cardinalities == ref_dataset.cross_cardinalities
    assert dataset.schema.positive_ratio == ref_dataset.schema.positive_ratio
    assert [f.name for f in dataset.schema.fields] == \
        [f.name for f in ref_dataset.schema.fields]
    for name in CONTINUOUS:
        assert (result.pipeline.fill_values[name]
                == ref_pipeline.fill_values[name])
        assert np.array_equal(
            result.pipeline._bucketizers[name]._edges,
            ref_pipeline._bucketizers[name]._edges)
    for name in CONTINUOUS + CATEGORICAL:
        assert (result.pipeline._vocabularies[name]._value_to_id
                == ref_pipeline._vocabularies[name]._value_to_id)


@pytest.mark.parametrize("chunk_rows", [7, 64, 10_000])
def test_streamed_fit_is_bit_identical(tmp_path, chunk_rows):
    path = write_file(tmp_path / "log.csv", make_rows())
    ref_pipeline, ref_dataset = in_memory_reference(path)
    result = ingest_file(path, IngestConfig(chunk_rows=chunk_rows,
                                            **PIPELINE_KW))
    assert_bit_identical(result, ref_pipeline, ref_dataset)


@pytest.mark.parametrize("stage,at_chunk", [("fit", 2), ("fit", 5),
                                            ("encode", 3)])
def test_killed_and_resumed_fit_is_bit_identical(tmp_path, stage, at_chunk):
    path = write_file(tmp_path / "log.csv", make_rows())
    ref_pipeline, ref_dataset = in_memory_reference(path)
    workdir = tmp_path / "wd"
    kw = dict(chunk_rows=64, workdir=workdir, **PIPELINE_KW)
    with pytest.raises(InjectedCrash):
        ChunkedIngestor(path, IngestConfig(**kw),
                        on_chunk=CrashAtChunk(at_chunk=at_chunk,
                                              stage=stage)).run()
    result = ingest_file(path, IngestConfig(resume=True, **kw))
    assert result.report.resumed
    assert result.report.chunks_resumed > 0
    assert_bit_identical(result, ref_pipeline, ref_dataset)


def test_double_kill_then_resume(tmp_path):
    """Two successive crashes at different stages still converge."""
    path = write_file(tmp_path / "log.csv", make_rows(400, seed=3))
    ref_pipeline, ref_dataset = in_memory_reference(path)
    kw = dict(chunk_rows=32, workdir=tmp_path / "wd", **PIPELINE_KW)
    with pytest.raises(InjectedCrash):
        ChunkedIngestor(path, IngestConfig(**kw),
                        on_chunk=CrashAtChunk(at_chunk=4)).run()
    with pytest.raises(InjectedCrash):
        ChunkedIngestor(path, IngestConfig(resume=True, **kw),
                        on_chunk=CrashAtChunk(at_chunk=6)).run()
    result = ingest_file(path, IngestConfig(resume=True, **kw))
    assert_bit_identical(result, ref_pipeline, ref_dataset)


def test_chaos_quarantine_accounting_is_exact(tmp_path):
    """k injected corrupt rows -> exactly k quarantined, dataset equals
    the in-memory fit on the clean subset."""
    clean_rows = make_rows(500, seed=7)
    clean_path = write_file(tmp_path / "clean.csv", clean_rows)
    ref_pipeline, ref_dataset = in_memory_reference(clean_path)

    dirty_path = write_file(tmp_path / "dirty.csv", clean_rows)
    k = 50  # 10% of rows
    positions = {int(p): GARBAGE_LINES[i % len(GARBAGE_LINES)]
                 for i, p in enumerate(
                     np.linspace(1, len(clean_rows), k).astype(int))}
    assert len(positions) == k
    inject_garbage_lines(dirty_path, positions)

    metrics = MetricsRegistry()
    qpath = tmp_path / "quarantine.jsonl"
    result = ingest_file(
        dirty_path,
        IngestConfig(chunk_rows=48, on_error="quarantine",
                     quarantine_path=qpath, **PIPELINE_KW),
        metrics=metrics)

    records = [json.loads(line) for line in qpath.read_text().splitlines()]
    assert len(records) == k
    assert result.report.rows_quarantined == k
    assert metrics.counter("ingest.quarantined").value == k
    assert result.report.rows_read == len(clean_rows) + k
    assert result.report.rows_ok == len(clean_rows)
    assert sum(result.report.errors.values()) == k
    # every record points at a real line of the dirty file
    dirty_lines = dirty_path.read_text(errors="replace").splitlines()
    for record in records:
        assert dirty_lines[record["line"] - 1] is not None
        assert record["code"] in ("parse", "arity", "label", "numeric")
    # and the surviving dataset is the clean one, bit for bit
    assert_bit_identical(result, ref_pipeline, ref_dataset)


def test_chaos_with_kill_and_resume_keeps_accounting_exact(tmp_path):
    """Crash mid-quarantine, resume, and the sidecar still counts k."""
    clean_rows = make_rows(400, seed=11)
    ref_path = write_file(tmp_path / "clean.csv", clean_rows)
    ref_pipeline, ref_dataset = in_memory_reference(ref_path)

    dirty_path = write_file(tmp_path / "dirty.csv", clean_rows)
    k = 40
    positions = {int(p): GARBAGE_LINES[i % len(GARBAGE_LINES)]
                 for i, p in enumerate(
                     np.linspace(1, len(clean_rows), k).astype(int))}
    inject_garbage_lines(dirty_path, positions)

    workdir = tmp_path / "wd"
    kw = dict(chunk_rows=32, on_error="quarantine", workdir=workdir,
              **PIPELINE_KW)
    with pytest.raises(InjectedCrash):
        ChunkedIngestor(dirty_path, IngestConfig(**kw),
                        on_chunk=CrashAtChunk(at_chunk=5)).run()
    metrics = MetricsRegistry()
    result = ingest_file(dirty_path, IngestConfig(resume=True, **kw),
                         metrics=metrics)

    records = (workdir / "quarantine.jsonl").read_text().splitlines()
    assert len(records) == k
    assert result.report.rows_quarantined == k
    assert result.report.rows_ok == len(clean_rows)
    # lines never double-reported across the kill/resume boundary
    lines = [json.loads(r)["line"] for r in records]
    assert len(lines) == len(set(lines))
    assert_bit_identical(result, ref_pipeline, ref_dataset)
