"""TupleCrossTransform: k-order cross features."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import TupleCrossTransform, default_tuples, make_schema


def _schema(m=4, card=4):
    return make_schema([card] * m)


class TestDefaultTuples:
    def test_counts(self):
        assert len(default_tuples(5, 2)) == 10
        assert len(default_tuples(5, 3)) == 10
        assert len(default_tuples(5, 5)) == 1

    def test_sorted_unique(self):
        for t in default_tuples(6, 3):
            assert list(t) == sorted(set(t))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            default_tuples(4, 1)
        with pytest.raises(ValueError):
            default_tuples(4, 5)


class TestTupleCrossTransform:
    def test_shapes(self, rng):
        schema = _schema(4)
        x = rng.integers(0, 4, size=(60, 4))
        transform = TupleCrossTransform(schema, order=3)
        out = transform.fit_transform(x)
        assert out.shape == (60, 4)  # C(4,3) = 4

    def test_order2_matches_pair_semantics(self, rng):
        """Order-2 tuples behave like the pairwise transform."""
        from repro.data import CrossProductTransform

        schema = _schema(3)
        x = rng.integers(0, 4, size=(100, 3))
        pairwise = CrossProductTransform(schema).fit_transform(x)
        tuple2 = TupleCrossTransform(schema, order=2).fit_transform(x)
        # Same grouping structure: identical rows <=> identical ids.
        for col in range(3):
            a, b = pairwise[:, col], tuple2[:, col]
            # Both encode the same partition of rows.
            assert len(np.unique(a)) == len(np.unique(b))

    def test_same_tuple_same_id(self):
        schema = _schema(3)
        x = np.array([[1, 2, 3], [1, 2, 3], [0, 2, 3]])
        out = TupleCrossTransform(schema, order=3).fit_transform(x)
        assert out[0, 0] == out[1, 0]
        assert out[0, 0] != out[2, 0]

    def test_min_count_oov(self):
        schema = _schema(3)
        x = np.array([[1, 1, 1]] * 4 + [[2, 2, 2]])
        transform = TupleCrossTransform(schema, order=3, min_count=2)
        out = transform.fit_transform(x)
        assert out[0, 0] != 0
        assert out[4, 0] == 0

    def test_unseen_at_transform_oov(self):
        schema = _schema(3)
        transform = TupleCrossTransform(schema, order=3).fit(
            np.array([[0, 0, 0]]))
        assert transform.transform(np.array([[3, 3, 3]]))[0, 0] == 0

    def test_explicit_tuples(self, rng):
        schema = _schema(5)
        x = rng.integers(0, 4, size=(50, 5))
        transform = TupleCrossTransform(schema, tuples=[(0, 1, 2), (1, 3, 4)])
        out = transform.fit_transform(x)
        assert out.shape == (50, 2)
        assert transform.num_tuples == 2

    def test_invalid_tuples_rejected(self):
        schema = _schema(4)
        with pytest.raises(ValueError):
            TupleCrossTransform(schema, tuples=[(0, 0, 1)])
        with pytest.raises(ValueError):
            TupleCrossTransform(schema, tuples=[(2, 1, 3)])
        with pytest.raises(ValueError):
            TupleCrossTransform(schema, tuples=[(0, 1, 9)])

    def test_cardinalities_include_oov(self, rng):
        schema = _schema(3)
        x = rng.integers(0, 4, size=(30, 3))
        transform = TupleCrossTransform(schema, order=3)
        transform.fit(x)
        assert all(c >= 1 for c in transform.cardinalities)
        assert transform.total_cross_values == sum(transform.cardinalities)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            TupleCrossTransform(_schema(3), order=3).transform(
                np.zeros((1, 3)))

    def test_large_cardinality_no_overflow(self, rng):
        """Mixed-radix keys stay in int64 for realistic cardinalities."""
        schema = make_schema([2000, 2000, 2000])
        x = rng.integers(0, 2000, size=(100, 3))
        out = TupleCrossTransform(schema, order=3).fit_transform(x)
        assert (out >= 0).all()

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_ids_in_range(self, seed):
        rng = np.random.default_rng(seed)
        schema = _schema(4)
        x = rng.integers(0, 4, size=(40, 4))
        transform = TupleCrossTransform(schema, order=3)
        out = transform.fit_transform(x)
        for col, card in enumerate(transform.cardinalities):
            assert out[:, col].max() < card


class TestDatasetIntegration:
    def test_make_dataset_with_triples(self):
        from repro.data import SyntheticConfig, make_dataset

        config = SyntheticConfig(cardinalities=[6, 8, 5, 7],
                                 n_samples=800, n_memorizable=1,
                                 n_factorizable=0,
                                 n_memorizable_triples=1, seed=5)
        ds, truth = make_dataset(config, with_triples=True)
        assert ds.x_triple is not None
        assert len(ds.triples) == 4  # C(4,3)
        assert len(truth.memorizable_triples) == 1
        assert truth.memorizable_triples[0] in ds.triples

    def test_triple_split_preserved(self):
        from repro.data import SyntheticConfig, make_dataset

        config = SyntheticConfig(cardinalities=[6, 8, 5], n_samples=400,
                                 n_memorizable=1, n_factorizable=0,
                                 n_memorizable_triples=1, seed=5)
        ds, _ = make_dataset(config, with_triples=True)
        train, test = ds.split((0.5, 0.5), rng=np.random.default_rng(0))
        assert train.x_triple.shape[0] == len(train)
        assert train.triples == ds.triples

    def test_batches_carry_triples(self):
        from repro.data import SyntheticConfig, make_dataset

        config = SyntheticConfig(cardinalities=[6, 8, 5], n_samples=300,
                                 n_memorizable=1, n_factorizable=0, seed=5)
        ds, _ = make_dataset(config, with_triples=True)
        batch = next(ds.iter_batches(64))
        assert batch.x_triple is not None
        assert batch.x_triple.shape == (64, 1)
