"""Sketch contracts: merge ≡ concatenation, state round-trips, and
finalization ≡ the one-shot in-memory fit."""

import numpy as np
import pytest

from repro.data import (
    CategoricalSketch,
    CrossSketch,
    LabelSketch,
    NumericSketch,
    Vocabulary,
    make_schema,
)
from repro.data.cross import CrossProductTransform
from repro.data.preprocessing import QuantileBucketizer
from repro.resilience import read_archive, write_archive


class TestCategoricalSketch:
    def test_finalize_equals_one_shot_fit(self):
        values = list("aabbbccccddddd") + ["rare"]
        chunks = [values[:5], values[5:11], values[11:]]
        sketch = CategoricalSketch()
        for chunk in chunks:
            sketch.update(chunk)
        streamed = sketch.finalize(min_count=2)
        direct = Vocabulary(min_count=2).fit(values)
        assert streamed._value_to_id == direct._value_to_id

    def test_merge_equals_combined_update(self):
        a = CategoricalSketch().update(["x", "y", "x"])
        b = CategoricalSketch().update(["y", "z"])
        merged = a.merge(b)
        combined = CategoricalSketch().update(["x", "y", "x", "y", "z"])
        assert merged.counts == combined.counts

    def test_state_round_trip(self):
        sketch = CategoricalSketch().update(["a", "b", "a", ""])
        arrays, meta = sketch.to_state()
        restored = CategoricalSketch.from_state(arrays, meta)
        assert restored.counts == sketch.counts


class TestNumericSketch:
    def test_finalize_matches_in_memory_objects(self):
        rng = np.random.default_rng(0)
        column = rng.choice([np.nan, -2.0, 0.0, 1.0, 1.5, 9.0], size=500,
                            p=[.15, .1, .3, .2, .15, .1])
        sketch = NumericSketch()
        for chunk in np.array_split(column, 7):
            sketch.update(chunk)
        fill, bucketizer, vocab = sketch.finalize(num_buckets=4)

        missing = np.isnan(column)
        expected_fill = float(np.median(column[~missing]))
        imputed = column.copy()
        imputed[missing] = expected_fill
        expected_bucketizer = QuantileBucketizer(num_buckets=4).fit(imputed)
        expected_vocab = Vocabulary().fit(
            expected_bucketizer.transform(imputed))

        assert fill == expected_fill
        assert np.array_equal(bucketizer._edges, expected_bucketizer._edges)
        assert vocab._value_to_id == expected_vocab._value_to_id

    def test_negative_zero_normalised(self):
        sketch = NumericSketch().update(np.array([-0.0, 0.0]))
        assert list(sketch.counts) == [0.0]
        assert sketch.counts[0.0] == 2

    def test_all_missing_column_zero_fills(self):
        sketch = NumericSketch().update(np.array([np.nan, np.nan]))
        fill, _, _ = sketch.finalize(num_buckets=3)
        assert fill == 0.0

    def test_empty_sketch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            NumericSketch().finalize(num_buckets=3)

    def test_state_round_trip_preserves_exact_counts(self):
        sketch = NumericSketch().update(
            np.array([1.5, 1.5, np.nan, -7.25, 1e-12]))
        arrays, meta = sketch.to_state()
        restored = NumericSketch.from_state(arrays, meta)
        assert restored.counts == sketch.counts
        assert restored.missing == sketch.missing

    def test_merge(self):
        a = NumericSketch().update(np.array([1.0, np.nan]))
        b = NumericSketch().update(np.array([1.0, 2.0]))
        a.merge(b)
        assert a.counts == {1.0: 2, 2.0: 1}
        assert a.missing == 1


class TestLabelSketch:
    def test_mean_is_exact(self):
        labels = np.array([1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0])
        sketch = LabelSketch()
        for chunk in np.array_split(labels, 3):
            sketch.update(chunk)
        assert sketch.mean() == float(np.mean(labels))

    def test_zero_labels_rejected(self):
        with pytest.raises(ValueError):
            LabelSketch().mean()


def random_ids(cardinalities, n, seed):
    rng = np.random.default_rng(seed)
    schema = make_schema(list(cardinalities))
    x = np.column_stack([rng.integers(0, card, size=n)
                         for card in cardinalities]).astype(np.int64)
    return schema, x


class TestCrossSketch:
    def test_finalize_equals_one_shot_fit(self):
        schema, x = random_ids([6, 4, 5], n=300, seed=1)
        cards = [6, 4, 5]
        direct = CrossProductTransform(schema, min_count=2)
        direct.fit(x, cards)

        sketch = CrossSketch(schema.pairs(), cards)
        for chunk in np.array_split(x, 5):
            sketch.update(chunk)
        streamed = sketch.finalize(schema, min_count=2)

        assert streamed.cardinalities == direct.cardinalities
        for mine, theirs in zip(streamed._kept_keys, direct._kept_keys):
            assert np.array_equal(mine, theirs)
        assert np.array_equal(streamed.transform(x), direct.transform(x))

    def test_state_round_trip(self):
        schema, x = random_ids([4, 3], n=50, seed=2)
        sketch = CrossSketch(schema.pairs(), [4, 3])
        sketch.update(x)
        arrays, meta = sketch.to_state()
        restored = CrossSketch.from_state(arrays, meta)
        assert restored.pairs == sketch.pairs
        assert restored.counts == sketch.counts


class TestArchivePersistence:
    """Sketches survive the checksummed-archive checkpoint format."""

    def test_numeric_sketch_through_archive(self, tmp_path):
        sketch = NumericSketch().update(np.array([3.0, np.nan, -1.5, 3.0]))
        arrays, meta = sketch.to_state()
        path = write_archive(tmp_path / "sketch.npz", arrays,
                             {"numeric": meta})
        loaded_arrays, loaded_meta = read_archive(path)
        restored = NumericSketch.from_state(loaded_arrays,
                                            loaded_meta["numeric"])
        assert restored.counts == sketch.counts
        assert restored.missing == sketch.missing
