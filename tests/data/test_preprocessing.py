"""Min-max normalisation (Eq. 20) and quantile bucketing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import MinMaxNormalizer, QuantileBucketizer


class TestMinMaxNormalizer:
    def test_maps_to_unit_interval(self, rng):
        values = rng.normal(10, 5, size=100)
        out = MinMaxNormalizer().fit_transform(values)
        assert out.min() == 0.0
        assert out.max() == 1.0

    def test_preserves_order(self, rng):
        values = rng.normal(size=50)
        out = MinMaxNormalizer().fit_transform(values)
        np.testing.assert_array_equal(np.argsort(out), np.argsort(values))

    def test_clips_out_of_range_at_transform(self):
        norm = MinMaxNormalizer().fit(np.array([0.0, 10.0]))
        out = norm.transform(np.array([-5.0, 15.0]))
        np.testing.assert_array_equal(out, [0.0, 1.0])

    def test_constant_column(self):
        out = MinMaxNormalizer().fit_transform(np.full(5, 3.0))
        np.testing.assert_array_equal(out, np.zeros(5))

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            MinMaxNormalizer().transform(np.ones(3))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            MinMaxNormalizer().fit(np.array([]))


class TestQuantileBucketizer:
    def test_bucket_range(self, rng):
        values = rng.normal(size=500)
        out = QuantileBucketizer(num_buckets=8).fit_transform(values)
        assert out.min() >= 0
        assert out.max() <= 7

    def test_roughly_equal_mass(self, rng):
        values = rng.normal(size=4000)
        out = QuantileBucketizer(num_buckets=4).fit_transform(values)
        counts = np.bincount(out, minlength=4)
        assert counts.min() > 800

    def test_monotone(self, rng):
        values = np.sort(rng.normal(size=100))
        out = QuantileBucketizer(num_buckets=5).fit_transform(values)
        assert (np.diff(out) >= 0).all()

    def test_extreme_values_fall_in_edge_buckets(self):
        buck = QuantileBucketizer(num_buckets=4).fit(np.arange(100.0))
        assert buck.transform(np.array([-1e9]))[0] == 0
        assert buck.transform(np.array([1e9]))[0] == 3

    def test_heavy_ties(self):
        values = np.array([1.0] * 90 + [2.0] * 10)
        out = QuantileBucketizer(num_buckets=4).fit_transform(values)
        assert out.min() >= 0 and out.max() <= 3

    def test_too_few_buckets_rejected(self):
        with pytest.raises(ValueError):
            QuantileBucketizer(num_buckets=1)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            QuantileBucketizer().transform(np.ones(3))

    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=5,
                    max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_ids_within_bucket_count(self, values):
        buck = QuantileBucketizer(num_buckets=6)
        out = buck.fit_transform(np.array(values))
        assert ((out >= 0) & (out < 6)).all()
