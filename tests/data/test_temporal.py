"""Temporal splits (paper's Private-dataset protocol)."""

import numpy as np
import pytest

from repro.data import last_period_split, temporal_split


@pytest.fixture()
def timestamps(tiny_dataset, rng):
    # Uniform "8 day" span.
    return rng.uniform(0.0, 8.0, size=len(tiny_dataset))


class TestTemporalSplit:
    def test_partition_complete_and_disjoint(self, tiny_dataset, timestamps):
        parts = temporal_split(tiny_dataset, timestamps, [4.0])
        assert sum(len(p) for p in parts) == len(tiny_dataset)

    def test_rows_respect_boundaries(self, tiny_dataset, timestamps):
        early, late = temporal_split(tiny_dataset, timestamps, [4.0])
        assert (timestamps[timestamps < 4.0].size == len(early))
        assert (timestamps[timestamps >= 4.0].size == len(late))

    def test_multiple_boundaries(self, tiny_dataset, timestamps):
        parts = temporal_split(tiny_dataset, timestamps, [2.0, 4.0, 6.0])
        assert len(parts) == 4

    def test_no_future_leakage(self, tiny_dataset, timestamps):
        """Every training row precedes every test row in time."""
        order = np.argsort(timestamps)
        sorted_times = timestamps[order]
        early, late = temporal_split(tiny_dataset, timestamps, [4.0])
        # Validate via counts against the sorted time axis.
        n_early = (sorted_times < 4.0).sum()
        assert len(early) == n_early
        assert len(late) == len(tiny_dataset) - n_early

    def test_bad_inputs(self, tiny_dataset, timestamps):
        with pytest.raises(ValueError):
            temporal_split(tiny_dataset, timestamps[:-1], [4.0])
        with pytest.raises(ValueError):
            temporal_split(tiny_dataset, timestamps, [])
        with pytest.raises(ValueError):
            temporal_split(tiny_dataset, timestamps, [5.0, 3.0])


class TestLastPeriodSplit:
    def test_paper_protocol_shape(self, tiny_dataset, timestamps):
        train, val, test = last_period_split(tiny_dataset, timestamps,
                                             train_fraction_of_periods=7 / 8,
                                             val_fraction_of_train=0.1)
        total = len(train) + len(val) + len(test)
        assert total == len(tiny_dataset)
        # Roughly one eighth of the span is test.
        assert 0.05 < len(test) / len(tiny_dataset) < 0.25

    def test_validation_is_latest_training_rows(self, tiny_dataset,
                                                timestamps):
        train, val, test = last_period_split(tiny_dataset, timestamps)
        # Reconstruct times via row identity: use y + x hash? Simpler: the
        # function guarantees split sizes are consistent with quantiles.
        assert len(val) > 0
        assert len(train) > len(val)

    def test_zero_validation_fraction(self, tiny_dataset, timestamps):
        train, val, test = last_period_split(tiny_dataset, timestamps,
                                             val_fraction_of_train=0.0)
        assert len(val) == 0
        assert len(train) + len(test) == len(tiny_dataset)

    def test_degenerate_timestamps_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            last_period_split(tiny_dataset, np.zeros(len(tiny_dataset)))

    def test_invalid_fractions(self, tiny_dataset, timestamps):
        with pytest.raises(ValueError):
            last_period_split(tiny_dataset, timestamps,
                              train_fraction_of_periods=1.0)
        with pytest.raises(ValueError):
            last_period_split(tiny_dataset, timestamps,
                              val_fraction_of_train=1.0)

    def test_trains_model_end_to_end(self, tiny_dataset, timestamps):
        from repro.models import LogisticRegression
        from repro.nn import Adam
        from repro.training import Trainer, evaluate_model

        train, val, test = last_period_split(tiny_dataset, timestamps)
        model = LogisticRegression(train.cardinalities,
                                   rng=np.random.default_rng(0))
        Trainer(model, Adam(model.parameters(), lr=5e-2), batch_size=256,
                max_epochs=4, rng=np.random.default_rng(0)).fit(train, val)
        metrics = evaluate_model(model, test)
        assert 0.0 <= metrics["auc"] <= 1.0
