"""Property-based tests for negative downsampling + recalibration.

Hypothesis drives random label vectors, rates and probabilities through
the pair of functions the paper's iPinYou protocol uses, pinning the
invariants a hand-picked example can miss:

* downsampling never drops a positive and never invents rows;
* ``rate=1.0`` is the identity for both functions;
* calibration inverts the odds inflation exactly:
  ``calibrate(p_downsampled_odds) == p`` for any achievable ``p``;
* calibration is monotone and stays inside ``[0, 1]`` — ranking metrics
  (AUC) are invariant under it;
* edge cases: all-negative chunks survive (or fail loudly when
  everything is dropped), all-positive chunks pass through untouched.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import make_schema
from repro.data.dataset import CTRDataset
from repro.data.loaders import calibrate_downsampled, negative_downsample

CARDS = [5, 4]


def dataset_from_labels(labels):
    labels = np.asarray(labels, dtype=np.float64)
    n = labels.size
    rng = np.random.default_rng(0)
    x = np.column_stack([rng.integers(0, card, size=n) for card in CARDS])
    return CTRDataset(schema=make_schema(CARDS), x=x.astype(np.int64),
                      y=labels, cardinalities=CARDS)


labels_strategy = st.lists(st.sampled_from([0.0, 1.0]),
                           min_size=1, max_size=200)
rates = st.floats(0.05, 1.0, allow_nan=False)
seeds = st.integers(0, 2**32 - 1)


class TestDownsampleProperties:
    @given(labels_strategy, rates, seeds)
    @settings(max_examples=60, deadline=None)
    def test_positives_preserved_and_rows_never_invented(self, labels,
                                                         rate, seed):
        dataset = dataset_from_labels(labels)
        rng = np.random.default_rng(seed)
        try:
            sampled = negative_downsample(dataset, rate, rng=rng)
        except ValueError:
            # legal only when every row was a droppable negative
            assert dataset.y.sum() == 0
            return
        assert sampled.y.sum() == dataset.y.sum()
        assert len(sampled) <= len(dataset)
        assert len(sampled) >= int(dataset.y.sum())

    @given(labels_strategy, seeds)
    @settings(max_examples=30, deadline=None)
    def test_rate_one_is_identity(self, labels, seed):
        dataset = dataset_from_labels(labels)
        sampled = negative_downsample(dataset, 1.0,
                                      rng=np.random.default_rng(seed))
        assert np.array_equal(sampled.y, dataset.y)
        assert np.array_equal(sampled.x, dataset.x)

    @given(st.integers(1, 50), rates, seeds)
    @settings(max_examples=30, deadline=None)
    def test_all_positive_chunk_passes_through(self, n, rate, seed):
        dataset = dataset_from_labels(np.ones(n))
        sampled = negative_downsample(dataset, rate,
                                      rng=np.random.default_rng(seed))
        assert len(sampled) == n

    def test_all_negative_chunk_keeps_sampled_negatives(self):
        dataset = dataset_from_labels(np.zeros(500))
        sampled = negative_downsample(dataset, 0.25,
                                      rng=np.random.default_rng(3))
        assert 0 < len(sampled) < 500
        assert sampled.y.sum() == 0

    def test_all_negative_chunk_can_fail_loudly(self):
        dataset = dataset_from_labels(np.zeros(3))
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="every row"):
            # tiny rate + tiny chunk: keep-mask can come up empty
            for _ in range(200):
                negative_downsample(dataset, 0.001, rng=rng)


probabilities = st.floats(1e-6, 1.0 - 1e-6, allow_nan=False)


class TestCalibrationProperties:
    @given(probabilities, rates)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_inverts_downsampling_odds(self, p, rate):
        """Training on negatives kept w.p. ``rate`` inflates the odds by
        1/rate: p_down = p / (p + (1-p)*rate).  Calibration undoes it."""
        p_down = p / (p + (1.0 - p) * rate)
        recovered = calibrate_downsampled(np.array([p_down]), rate)[0]
        assert recovered == pytest.approx(p, rel=1e-9, abs=1e-12)

    @given(st.lists(probabilities, min_size=2, max_size=50), rates)
    @settings(max_examples=60, deadline=None)
    def test_monotone_and_bounded(self, probs, rate):
        probs = np.sort(np.asarray(probs))
        calibrated = calibrate_downsampled(probs, rate)
        assert np.all(calibrated >= 0.0) and np.all(calibrated <= 1.0)
        assert np.all(np.diff(calibrated) >= 0.0)  # AUC-invariant

    @given(st.lists(probabilities, min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_rate_one_is_identity(self, probs):
        probs = np.asarray(probs)
        assert np.allclose(calibrate_downsampled(probs, 1.0), probs)

    @given(rates)
    @settings(max_examples=30, deadline=None)
    def test_extremes_are_fixed_points(self, rate):
        assert calibrate_downsampled(np.array([0.0]), rate)[0] == 0.0
        assert calibrate_downsampled(np.array([1.0]), rate)[0] == 1.0

    @given(probabilities, rates)
    @settings(max_examples=60, deadline=None)
    def test_calibration_never_increases_probability(self, p, rate):
        """Downsampling negatives biases scores up; the correction can
        only shrink them (equality iff rate == 1)."""
        calibrated = calibrate_downsampled(np.array([p]), rate)[0]
        assert calibrated <= p + 1e-12
