"""Property-based tests for the cross-product transforms (paper Eq. 4).

Invariants, driven by hypothesis over random schemas and id matrices:

* transform output ids always lie within the reported ``cardinalities``;
* combinations unseen at fit time or filtered by ``min_count`` fold to
  ``OOV_ID``;
* ``fit_transform(x)`` equals ``fit(x).transform(x)``;
* hashed buckets are stable across calls and instances.

Plus regression tests for two fixed bugs: ``HashedCrossTransform.fit``
accepted any input shape, and ``CrossProductTransform.transform``
silently computed aliasing pair keys for ids outside the fit-time
cardinality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CrossProductTransform, HashedCrossTransform, make_schema
from repro.data.cross import OOV_ID


@st.composite
def id_matrices(draw):
    """(cardinalities, x) with every id valid for its field."""
    cards = draw(st.lists(st.integers(2, 6), min_size=2, max_size=4))
    n = draw(st.integers(1, 30))
    columns = [draw(st.lists(st.integers(0, card - 1),
                             min_size=n, max_size=n))
               for card in cards]
    return cards, np.array(columns, dtype=np.int64).T


class TestCrossProductProperties:
    @given(id_matrices(), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_ids_within_cardinalities(self, data, min_count):
        cards, x = data
        cross = CrossProductTransform(make_schema(cards), min_count=min_count)
        out = cross.fit_transform(x)
        assert out.shape == (x.shape[0], len(cross.pairs))
        for p, card in enumerate(cross.cardinalities):
            assert out[:, p].min() >= 0
            assert out[:, p].max() < card

    @given(id_matrices())
    @settings(max_examples=40, deadline=None)
    def test_fit_transform_equals_fit_then_transform(self, data):
        cards, x = data
        schema = make_schema(cards)
        a = CrossProductTransform(schema).fit_transform(x)
        b = CrossProductTransform(schema).fit(x).transform(x)
        np.testing.assert_array_equal(a, b)

    @given(id_matrices())
    @settings(max_examples=40, deadline=None)
    def test_unseen_combinations_fold_to_oov(self, data):
        cards, x = data
        schema = make_schema(cards)
        cross = CrossProductTransform(schema).fit(x)
        # Probe the full grid of valid ids; any pair combination absent
        # from the fitted data must map to OOV, and seen ones must not.
        probe = np.array([[i % card for card in cards]
                          for i in range(max(cards))], dtype=np.int64)
        out = cross.transform(probe)
        for p, (i, j) in enumerate(cross.pairs):
            seen = {(a, b) for a, b in zip(x[:, i], x[:, j])}
            for row in range(probe.shape[0]):
                combo = (probe[row, i], probe[row, j])
                if combo in seen:
                    assert out[row, p] != OOV_ID
                else:
                    assert out[row, p] == OOV_ID

    @given(id_matrices())
    @settings(max_examples=40, deadline=None)
    def test_min_count_filtered_combinations_fold_to_oov(self, data):
        cards, x = data
        schema = make_schema(cards)
        # min_count above the row count filters everything out.
        cross = CrossProductTransform(schema, min_count=x.shape[0] + 1)
        out = cross.fit_transform(x)
        assert np.all(out == OOV_ID)
        assert cross.cardinalities == [1] * len(cross.pairs)


class TestHashedCrossProperties:
    @given(id_matrices(), st.integers(2, 64))
    @settings(max_examples=40, deadline=None)
    def test_ids_within_cardinalities(self, data, buckets):
        cards, x = data
        hashed = HashedCrossTransform(make_schema(cards), num_buckets=buckets)
        out = hashed.fit_transform(x)
        for p, card in enumerate(hashed.cardinalities):
            assert out[:, p].min() >= 1  # hashed ids never use the OOV slot
            assert out[:, p].max() < card

    @given(id_matrices(), st.integers(2, 64))
    @settings(max_examples=40, deadline=None)
    def test_buckets_stable_across_calls_and_instances(self, data, buckets):
        cards, x = data
        schema = make_schema(cards)
        hashed = HashedCrossTransform(schema, num_buckets=buckets)
        first = hashed.fit_transform(x)
        np.testing.assert_array_equal(first, hashed.transform(x))
        other = HashedCrossTransform(schema, num_buckets=buckets)
        np.testing.assert_array_equal(first, other.fit_transform(x))

    @given(id_matrices())
    @settings(max_examples=40, deadline=None)
    def test_fit_transform_equals_fit_then_transform(self, data):
        cards, x = data
        schema = make_schema(cards)
        a = HashedCrossTransform(schema, num_buckets=8).fit_transform(x)
        b = HashedCrossTransform(schema, num_buckets=8).fit(x).transform(x)
        np.testing.assert_array_equal(a, b)


class TestValidationRegressions:
    """Regression tests for the two fixed validation bugs."""

    def test_hashed_fit_rejects_wrong_width(self):
        schema = make_schema([4, 4, 4])
        with pytest.raises(ValueError, match=r"\[n, 3\]"):
            HashedCrossTransform(schema).fit(np.zeros((5, 2), dtype=int))

    def test_hashed_fit_rejects_wrong_ndim(self):
        schema = make_schema([4, 4])
        with pytest.raises(ValueError):
            HashedCrossTransform(schema).fit(np.zeros(6, dtype=int))

    def test_transform_rejects_ids_beyond_fit_cardinality(self):
        schema = make_schema([4, 4])
        cross = CrossProductTransform(schema).fit(
            np.array([[0, 0], [3, 3]]), cardinalities=[4, 4])
        with pytest.raises(ValueError, match="field 0"):
            cross.transform(np.array([[4, 0]]))

    def test_transform_rejects_negative_ids(self):
        schema = make_schema([4, 4])
        cross = CrossProductTransform(schema).fit(np.array([[0, 0]]))
        with pytest.raises(ValueError):
            cross.transform(np.array([[-1, 0]]))

    def test_transform_rejects_wrong_width(self):
        schema = make_schema([4, 4, 4])
        cross = CrossProductTransform(schema).fit(
            np.zeros((2, 3), dtype=int))
        with pytest.raises(ValueError):
            cross.transform(np.zeros((2, 2), dtype=int))

    def test_fit_rejects_ids_beyond_schema_cardinality(self):
        schema = make_schema([2, 2])
        with pytest.raises(ValueError):
            CrossProductTransform(schema).fit(np.array([[2, 0]]))
