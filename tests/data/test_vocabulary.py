"""Vocabulary: frequency thresholding, OOV folding, per-field mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import OOV_ID, FieldVocabularies, Vocabulary


class TestVocabulary:
    def test_fit_assigns_dense_ids(self):
        vocab = Vocabulary().fit(["a", "b", "a", "c"])
        ids = {vocab.lookup(v) for v in "abc"}
        assert ids == {1, 2, 3}
        assert vocab.size == 4  # three values + OOV

    def test_min_count_folds_rare_values(self):
        vocab = Vocabulary(min_count=2).fit(["a", "a", "b"])
        assert vocab.lookup("a") != OOV_ID
        assert vocab.lookup("b") == OOV_ID

    def test_unseen_maps_to_oov(self):
        vocab = Vocabulary().fit(["x"])
        assert vocab.lookup("never-seen") == OOV_ID

    def test_frequent_values_get_smaller_ids(self):
        vocab = Vocabulary().fit(["a"] * 5 + ["b"] * 2 + ["c"] * 9)
        assert vocab.lookup("c") < vocab.lookup("a") < vocab.lookup("b")

    def test_transform_vectorised(self):
        vocab = Vocabulary().fit([1, 2, 1])
        out = vocab.transform([1, 2, 99])
        assert out.dtype == np.int64
        assert out[2] == OOV_ID
        assert out[0] == vocab.lookup(1)

    def test_double_fit_rejected(self):
        vocab = Vocabulary().fit(["a"])
        with pytest.raises(RuntimeError):
            vocab.fit(["b"])

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            Vocabulary().transform(["a"])

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)

    def test_contains(self):
        vocab = Vocabulary().fit(["a"])
        assert "a" in vocab
        assert "b" not in vocab

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_ids_always_in_range(self, values):
        vocab = Vocabulary(min_count=2).fit(values)
        out = vocab.transform(values)
        assert (out >= 0).all()
        assert (out < vocab.size).all()

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, values):
        a = Vocabulary(min_count=2).fit(values).transform(values)
        b = Vocabulary(min_count=2).fit(values).transform(values)
        np.testing.assert_array_equal(a, b)


class TestFieldVocabularies:
    def test_per_column_mapping(self):
        raw = np.array([[1, 9], [1, 8], [2, 9]])
        vocabs = FieldVocabularies().fit(raw)
        out = vocabs.transform(raw)
        assert out.shape == raw.shape
        assert len(vocabs.sizes) == 2

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            FieldVocabularies().fit(np.array([1, 2, 3]))

    def test_rejects_wrong_width(self):
        vocabs = FieldVocabularies().fit(np.array([[1, 2]]))
        with pytest.raises(ValueError):
            vocabs.transform(np.array([[1, 2, 3]]))

    def test_sizes_include_oov(self):
        raw = np.array([[1], [2], [3]])
        vocabs = FieldVocabularies().fit(raw)
        assert vocabs.sizes == [4]


class TestStreamingVocabulary:
    def test_matches_one_shot_fit(self):
        from repro.data import StreamingVocabulary

        values = ["a", "b", "a", "c", "b", "a", "d"]
        streaming = StreamingVocabulary(min_count=2)
        streaming.update(values[:3])
        streaming.update(values[3:])
        from_stream = streaming.finalize()
        one_shot = Vocabulary(min_count=2).fit(values)
        for v in "abcd":
            assert from_stream.lookup(v) == one_shot.lookup(v), v

    def test_counts_accumulate_across_chunks(self):
        from repro.data import StreamingVocabulary

        streaming = StreamingVocabulary(min_count=3)
        streaming.update(["x"])
        streaming.update(["x"])
        streaming.update(["x", "y"])
        vocab = streaming.finalize()
        assert vocab.lookup("x") != OOV_ID  # 3 occurrences across chunks
        assert vocab.lookup("y") == OOV_ID

    def test_update_after_finalize_rejected(self):
        from repro.data import StreamingVocabulary

        streaming = StreamingVocabulary()
        streaming.update(["a"])
        streaming.finalize()
        with pytest.raises(RuntimeError):
            streaming.update(["b"])

    def test_finalize_idempotent(self):
        from repro.data import StreamingVocabulary

        streaming = StreamingVocabulary()
        streaming.update(["a"])
        assert streaming.finalize() is streaming.finalize()

    def test_seen_values(self):
        from repro.data import StreamingVocabulary

        streaming = StreamingVocabulary()
        streaming.update(["a", "b", "a"])
        assert streaming.seen_values == 2

    def test_invalid_min_count(self):
        from repro.data import StreamingVocabulary

        with pytest.raises(ValueError):
            StreamingVocabulary(min_count=0)


class TestOOVEdgeCases:
    """Serving-path edge cases: None/NaN/empty values must fold to OOV
    and never change the output dtype (the embedding lookup is int64)."""

    def test_none_maps_to_oov(self):
        vocab = Vocabulary().fit(["a", "b"])
        out = vocab.transform([None, "a"])
        assert out.dtype == np.int64
        assert out[0] == OOV_ID
        assert out[1] == vocab.lookup("a")

    def test_nan_maps_to_oov(self):
        vocab = Vocabulary().fit(["a"])
        out = vocab.transform([float("nan")])
        assert out.dtype == np.int64
        assert out[0] == OOV_ID

    def test_empty_string_is_a_value_not_missing(self):
        # "" seen at fit time is an ordinary value; unseen "" is OOV.
        fitted = Vocabulary().fit(["", "", "a"])
        assert fitted.lookup("") != OOV_ID
        unfitted = Vocabulary().fit(["a"])
        assert unfitted.transform([""])[0] == OOV_ID

    def test_map_on_empty_iterable_keeps_int64(self):
        vocab = Vocabulary().fit(["a", "b"])
        out = vocab.map([])
        assert out.dtype == np.int64
        assert out.shape == (0,)

    def test_map_on_empty_generator_keeps_int64(self):
        vocab = Vocabulary().fit(["a"])
        out = vocab.map(v for v in ())
        assert out.dtype == np.int64
        assert len(out) == 0

    def test_map_is_the_transform_alias(self):
        vocab = Vocabulary().fit([1, 2, 3])
        np.testing.assert_array_equal(vocab.map([1, 9, 3]),
                                      vocab.transform([1, 9, 3]))

    def test_none_in_fit_is_an_ordinary_value(self):
        vocab = Vocabulary().fit([None, None, "a"])
        assert vocab.lookup(None) != OOV_ID
        assert vocab.transform([None])[0] == vocab.lookup(None)
