"""Schema: field specs, pair enumeration, pair indexing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import FieldSpec, Schema, make_schema


class TestFieldSpec:
    def test_valid(self):
        spec = FieldSpec(name="site", cardinality=10)
        assert spec.kind == "categorical"

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            FieldSpec(name="x", cardinality=2, kind="ordinal")

    def test_invalid_cardinality(self):
        with pytest.raises(ValueError):
            FieldSpec(name="x", cardinality=0)


class TestSchema:
    def test_basic_properties(self):
        schema = make_schema([3, 4, 5], positive_ratio=0.2)
        assert schema.num_fields == 3
        assert schema.num_pairs == 3
        assert schema.cardinalities == [3, 4, 5]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema(fields=(FieldSpec("a", 2), FieldSpec("a", 3)))

    def test_invalid_positive_ratio(self):
        with pytest.raises(ValueError):
            make_schema([2, 2], positive_ratio=0.0)

    def test_pairs_ordering(self):
        schema = make_schema([2, 2, 2, 2])
        assert schema.pairs() == [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]

    def test_pair_names(self):
        schema = make_schema([2, 2], field_names=["u", "v"])
        assert schema.pair_names() == ["uxv"]

    def test_continuous_fields_marked(self):
        schema = make_schema([2, 2, 2], continuous_fields=(1,))
        assert schema.fields[1].kind == "continuous"
        assert schema.fields[0].kind == "categorical"

    def test_field_names_length_mismatch(self):
        with pytest.raises(ValueError):
            make_schema([2, 2], field_names=["only_one"])


class TestPairIndex:
    def test_matches_enumeration(self):
        schema = make_schema([2] * 6)
        for expected, (i, j) in enumerate(schema.pairs()):
            assert schema.pair_index(i, j) == expected

    @given(st.integers(2, 12))
    @settings(max_examples=10, deadline=None)
    def test_bijection_property(self, m):
        schema = make_schema([2] * m)
        indices = [schema.pair_index(i, j) for i, j in schema.pairs()]
        assert indices == list(range(schema.num_pairs))

    def test_invalid_pairs_rejected(self):
        schema = make_schema([2, 2, 2])
        with pytest.raises(ValueError):
            schema.pair_index(1, 1)
        with pytest.raises(ValueError):
            schema.pair_index(2, 1)
        with pytest.raises(ValueError):
            schema.pair_index(0, 3)
