"""CSV loading, the raw-data pipeline, and negative downsampling."""

import numpy as np
import pytest

from repro.data.errors import ArityError, IngestError, SchemaError
from repro.data.loaders import (
    CRITEO_CATEGORICAL_COLUMNS,
    CRITEO_INTEGER_COLUMNS,
    CTRPipeline,
    calibrate_downsampled,
    load_criteo_format,
    negative_downsample,
    read_csv,
)
from repro.data.vocabulary import OOV_ID


@pytest.fixture()
def csv_file(tmp_path):
    path = tmp_path / "clicks.csv"
    path.write_text(
        "label,site,device,price\n"
        "1,siteA,phone,3.5\n"
        "0,siteB,desktop,1.0\n"
        "0,siteA,phone,\n"
        "1,siteC,tablet,9.9\n"
        "0,siteA,desktop,2.2\n"
    )
    return path


class TestReadCSV:
    def test_columns_and_rows(self, csv_file):
        columns = read_csv(csv_file)
        assert set(columns) == {"label", "site", "device", "price"}
        assert len(columns["site"]) == 5
        assert columns["site"][0] == "siteA"

    def test_max_rows(self, csv_file):
        columns = read_csv(csv_file, max_rows=2)
        assert len(columns["label"]) == 2

    def test_headerless_with_names(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1,a\n0,b\n")
        columns = read_csv(path, header=False, column_names=["y", "x"])
        assert list(columns["y"]) == ["1", "0"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_csv(tmp_path / "absent.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_name_count_mismatch(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1,2\n")
        with pytest.raises(ValueError):
            read_csv(path, header=False, column_names=["only_one"])


class TestTypedReadCSVErrors:
    """read_csv failures carry the file path and the 1-based line number
    (and stay catchable as plain ValueError for old callers)."""

    def test_truly_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(IngestError) as excinfo:
            read_csv(path)
        assert str(path) in str(excinfo.value)
        assert excinfo.value.line_number == 1
        assert "header" in excinfo.value.reason

    def test_header_only_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        with pytest.raises(IngestError) as excinfo:
            read_csv(path)
        assert excinfo.value.line_number == 2
        assert "no data rows" in excinfo.value.reason

    def test_ragged_row_names_offending_line(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n4,5\n")
        with pytest.raises(ArityError) as excinfo:
            read_csv(path)
        assert excinfo.value.line_number == 3
        assert excinfo.value.raw == "3"
        assert f"{path}:3" in str(excinfo.value)

    def test_headerless_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("1,2\n3,4,5\n")
        with pytest.raises(ArityError) as excinfo:
            read_csv(path, header=False, column_names=["a", "b"])
        assert excinfo.value.line_number == 2

    def test_name_count_mismatch_is_schema_error(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1,2\n")
        with pytest.raises(SchemaError):
            read_csv(path, header=False, column_names=["only_one"])

    def test_error_codes_stable(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n1\n")
        with pytest.raises(ArityError) as excinfo:
            read_csv(path)
        assert excinfo.value.code == "arity"


class TestCriteoFormat:
    def test_layout(self, tmp_path):
        path = tmp_path / "criteo.tsv"
        row = ["1"] + [str(i) for i in range(13)] + [f"c{i:02d}" for i in range(26)]
        path.write_text("\t".join(row) + "\n" + "\t".join(row) + "\n")
        columns = load_criteo_format(path)
        assert len(columns) == 40
        assert columns["label"][0] == "1"
        assert all(c in columns for c in CRITEO_INTEGER_COLUMNS)
        assert all(c in columns for c in CRITEO_CATEGORICAL_COLUMNS)


class TestCTRPipeline:
    def test_end_to_end(self, csv_file):
        columns = read_csv(csv_file)
        pipeline = CTRPipeline(categorical=["site", "device"],
                               continuous=["price"], label="label",
                               num_buckets=3)
        dataset = pipeline.fit_transform(columns)
        assert len(dataset) == 5
        assert dataset.num_fields == 3
        assert dataset.x_cross is not None
        np.testing.assert_array_equal(np.unique(dataset.y), [0.0, 1.0])

    def test_field_order_continuous_first(self, csv_file):
        columns = read_csv(csv_file)
        pipeline = CTRPipeline(categorical=["site"], continuous=["price"])
        dataset = pipeline.fit_transform(columns)
        assert dataset.schema.field_names == ["price", "site"]
        assert dataset.schema.fields[0].kind == "continuous"

    def test_transform_maps_unseen_to_oov(self, csv_file, tmp_path):
        columns = read_csv(csv_file)
        pipeline = CTRPipeline(categorical=["site", "device"],
                               continuous=["price"])
        pipeline.fit(columns)
        new = {
            "label": np.array(["0", "1"], dtype=object),
            "site": np.array(["siteZ", "siteA"], dtype=object),
            "device": np.array(["phone", "watch"], dtype=object),
            "price": np.array(["4.0", "100.0"], dtype=object),
        }
        dataset = pipeline.transform(new)
        assert dataset.x[0, dataset.schema.field_names.index("site")] == 0
        assert dataset.x[1, dataset.schema.field_names.index("device")] == 0

    def test_min_count_folds_rare(self, csv_file):
        columns = read_csv(csv_file)
        pipeline = CTRPipeline(categorical=["site", "device"],
                               min_count=2)
        dataset = pipeline.fit_transform(columns)
        site_col = dataset.schema.field_names.index("site")
        # siteB and siteC appear once -> OOV.
        site_values = columns["site"]
        ids = dataset.x[:, site_col]
        assert ids[list(site_values).index("siteB")] == 0
        assert ids[list(site_values).index("siteC")] == 0

    def test_missing_continuous_imputed(self, csv_file):
        columns = read_csv(csv_file)
        pipeline = CTRPipeline(categorical=["site"], continuous=["price"])
        dataset = pipeline.fit_transform(columns)
        # The row with an empty price still got a valid bucket id.
        assert (dataset.x[:, 0] >= 0).all()

    def test_no_cross_option(self, csv_file):
        columns = read_csv(csv_file)
        pipeline = CTRPipeline(categorical=["site", "device"],
                               build_cross=False)
        dataset = pipeline.fit_transform(columns)
        assert dataset.x_cross is None

    def test_feeds_models_directly(self, csv_file):
        from repro.models import LogisticRegression

        columns = read_csv(csv_file)
        dataset = CTRPipeline(categorical=["site", "device"],
                              continuous=["price"]).fit_transform(columns)
        model = LogisticRegression(dataset.cardinalities,
                                   rng=np.random.default_rng(0))
        probs = model.predict_proba(dataset.full_batch())
        assert probs.shape == (5,)

    def test_double_fit_rejected(self, csv_file):
        columns = read_csv(csv_file)
        pipeline = CTRPipeline(categorical=["site"])
        pipeline.fit(columns)
        with pytest.raises(RuntimeError):
            pipeline.fit(columns)

    def test_transform_before_fit(self, csv_file):
        columns = read_csv(csv_file)
        with pytest.raises(RuntimeError):
            CTRPipeline(categorical=["site"]).transform(columns)

    def test_overlapping_columns_rejected(self):
        with pytest.raises(ValueError):
            CTRPipeline(categorical=["a"], continuous=["a"])

    def test_missing_column_reported(self, csv_file):
        columns = read_csv(csv_file)
        with pytest.raises(KeyError):
            CTRPipeline(categorical=["site", "phantom"]).fit(columns)

    def test_non_binary_label_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("label,site\n2,a\n0,b\n")
        columns = read_csv(path)
        with pytest.raises(ValueError):
            CTRPipeline(categorical=["site"]).fit_transform(columns)


class TestOOVFoldRule:
    """The documented offline rule (shared with the serving validator):
    transform imputes the *training* median, folds None/NaN/unseen
    categoricals to OOV, and treats "" as a real categorical value."""

    @pytest.fixture()
    def fitted(self, csv_file):
        pipeline = CTRPipeline(categorical=["site"], continuous=["price"])
        pipeline.fit(read_csv(csv_file))
        return pipeline

    def test_fill_value_is_training_median(self, fitted):
        # present prices at fit: 3.5, 1.0, 9.9, 2.2 -> median 2.85
        assert fitted.fill_values["price"] == pytest.approx(2.85)

    def test_transform_uses_training_median_not_batch_median(self, fitted):
        # A serving-time batch whose own median would be wildly different:
        batch = {"label": ["0", "0"], "site": ["siteA", "siteA"],
                 "price": ["", "1000"]}
        imputed = fitted.transform(batch)
        explicit = fitted.transform(
            {"label": ["0", "0"], "site": ["siteA", "siteA"],
             "price": ["2.85", "1000"]})
        assert np.array_equal(imputed.x, explicit.x)

    def test_out_of_range_clips_to_extreme_buckets(self, fitted):
        low_high = fitted.transform(
            {"label": ["0", "0"], "site": ["siteA", "siteA"],
             "price": ["-1e9", "1e9"]})
        edges = fitted.transform(
            {"label": ["0", "0"], "site": ["siteA", "siteA"],
             "price": ["1.0", "9.9"]})  # training min / max
        assert np.array_equal(low_high.x[:, 0], edges.x[:, 0])

    def test_unseen_and_none_categorical_fold_to_oov(self, fitted):
        dataset = fitted.transform(
            {"label": ["0", "0"], "site": ["never_seen", None],
             "price": ["2.0", "2.0"]})
        assert dataset.x[0, 1] == OOV_ID
        assert dataset.x[1, 1] == OOV_ID

    def test_empty_string_categorical_is_a_real_value(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("label,site\n1,\n0,\n1,siteA\n0,siteA\n")
        pipeline = CTRPipeline(categorical=["site"], min_count=2)
        dataset = pipeline.fit_transform(read_csv(path))
        assert pipeline._vocabularies["site"].lookup("") != OOV_ID
        assert dataset.x[0, 0] == dataset.x[1, 0] != OOV_ID


class TestNegativeDownsampling:
    def test_keeps_all_positives(self, tiny_dataset):
        sampled = negative_downsample(tiny_dataset, rate=0.1,
                                      rng=np.random.default_rng(0))
        assert sampled.y.sum() == tiny_dataset.y.sum()
        assert len(sampled) < len(tiny_dataset)

    def test_rate_one_is_identity(self, tiny_dataset):
        sampled = negative_downsample(tiny_dataset, rate=1.0)
        assert len(sampled) == len(tiny_dataset)

    def test_invalid_rate(self, tiny_dataset):
        with pytest.raises(ValueError):
            negative_downsample(tiny_dataset, rate=0.0)

    def test_positive_ratio_increases(self, tiny_dataset):
        sampled = negative_downsample(tiny_dataset, rate=0.2,
                                      rng=np.random.default_rng(1))
        assert sampled.positive_ratio > tiny_dataset.positive_ratio


class TestCalibration:
    def test_identity_at_rate_one(self):
        probs = np.array([0.1, 0.5, 0.9])
        np.testing.assert_allclose(calibrate_downsampled(probs, 1.0), probs)

    def test_shrinks_probabilities(self):
        probs = np.array([0.5])
        corrected = calibrate_downsampled(probs, rate=0.1)
        assert corrected[0] < 0.5
        # p=0.5 with rate 0.1: 0.5 / (0.5 + 0.5/0.1) = 1/11.
        np.testing.assert_allclose(corrected[0], 1.0 / 11.0)

    def test_roundtrip_with_downsampled_training(self):
        """Calibration recovers the true base rate in expectation."""
        rng = np.random.default_rng(0)
        true_rate = 0.02
        n = 200_000
        y = (rng.random(n) < true_rate).astype(float)
        keep = (y == 1) | (rng.random(n) < 0.1)
        downsampled_rate = y[keep].mean()
        # A constant predictor trained on the downsampled data predicts the
        # downsampled base rate; calibration maps it back.
        corrected = calibrate_downsampled(np.array([downsampled_rate]), 0.1)
        assert abs(corrected[0] - true_rate) < 0.005

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            calibrate_downsampled(np.array([0.5]), 0.0)
