"""Cross-cutting data-pipeline invariants (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CrossProductTransform,
    SyntheticConfig,
    make_dataset,
    make_schema,
)


config_strategy = st.builds(
    SyntheticConfig,
    cardinalities=st.lists(st.integers(3, 15), min_size=3, max_size=5),
    n_samples=st.integers(200, 600),
    positive_ratio=st.floats(0.05, 0.6),
    n_memorizable=st.integers(0, 1),
    n_factorizable=st.integers(0, 1),
    min_count=st.integers(1, 2),
    cross_min_count=st.integers(1, 2),
    seed=st.integers(0, 1000),
)


class TestGeneratorInvariants:
    @given(config=config_strategy)
    @settings(max_examples=15, deadline=None)
    def test_dataset_well_formed(self, config):
        dataset, truth = make_dataset(config)
        # Shapes.
        assert dataset.x.shape == (config.n_samples, config.num_fields)
        assert dataset.x_cross.shape == (config.n_samples, dataset.num_pairs)
        # Ids within bounds.
        for col, card in enumerate(dataset.cardinalities):
            assert 0 <= dataset.x[:, col].min()
            assert dataset.x[:, col].max() < card
        # Labels binary, ratio near the target.
        assert set(np.unique(dataset.y)).issubset({0.0, 1.0})
        assert abs(dataset.positive_ratio - config.positive_ratio) < 0.15
        # Ground truth covers every pair exactly once.
        assert len(truth.pair_roles) == dataset.num_pairs

    @given(config=config_strategy)
    @settings(max_examples=10, deadline=None)
    def test_split_then_batch_roundtrip(self, config):
        dataset, _ = make_dataset(config)
        train, test = dataset.split((0.6, 0.4),
                                    rng=np.random.default_rng(config.seed))
        rows = sum(len(b) for b in train.iter_batches(64))
        assert rows == len(train)
        assert len(train) + len(test) == len(dataset)

    @given(config=config_strategy)
    @settings(max_examples=10, deadline=None)
    def test_cross_ids_consistent_with_value_pairs(self, config):
        """Equal cross ids (non-OOV) imply equal original value pairs."""
        dataset, _ = make_dataset(config)
        i, j = dataset.schema.pairs()[0]
        ids = dataset.x_cross[:, 0]
        for target in np.unique(ids):
            if target == 0:
                continue
            rows = np.flatnonzero(ids == target)
            pairs = {(dataset.x[r, i], dataset.x[r, j]) for r in rows}
            assert len(pairs) == 1


class TestCrossTransformInvariants:
    @given(seed=st.integers(0, 500), min_count=st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_train_ids_cover_test_ids(self, seed, min_count):
        """Transforming unseen data never invents new ids."""
        rng = np.random.default_rng(seed)
        schema = make_schema([6, 6, 6])
        train = rng.integers(0, 6, size=(120, 3))
        test = rng.integers(0, 6, size=(60, 3))
        transform = CrossProductTransform(schema, min_count=min_count)
        transform.fit(train)
        train_ids = transform.transform(train)
        test_ids = transform.transform(test)
        for p in range(3):
            assert set(np.unique(test_ids[:, p])) <= (
                set(np.unique(train_ids[:, p])) | {0})

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_higher_min_count_never_increases_vocab(self, seed):
        rng = np.random.default_rng(seed)
        schema = make_schema([8, 8])
        x = rng.integers(0, 8, size=(100, 2))
        loose = CrossProductTransform(schema, min_count=1).fit(x)
        strict = CrossProductTransform(schema, min_count=3).fit(x)
        assert strict.total_cross_values <= loose.total_cross_values
