"""CTRDataset: validation, splitting, batching."""

import numpy as np
import pytest

from repro.data import Batch, CTRDataset, make_schema


def _dataset(n=100, m=3, with_cross=True, rng=None):
    rng = rng or np.random.default_rng(0)
    schema = make_schema([5] * m)
    x = rng.integers(0, 5, size=(n, m))
    y = (rng.random(n) > 0.7).astype(float)
    x_cross = rng.integers(0, 9, size=(n, schema.num_pairs)) if with_cross else None
    return CTRDataset(
        schema=schema, x=x, y=y, cardinalities=[5] * m,
        x_cross=x_cross,
        cross_cardinalities=[9] * schema.num_pairs if with_cross else None,
    )


class TestValidation:
    def test_row_count_mismatch(self):
        schema = make_schema([2, 2])
        with pytest.raises(ValueError):
            CTRDataset(schema=schema, x=np.zeros((3, 2), dtype=int),
                       y=np.zeros(4), cardinalities=[2, 2])

    def test_field_count_mismatch(self):
        schema = make_schema([2, 2])
        with pytest.raises(ValueError):
            CTRDataset(schema=schema, x=np.zeros((3, 3), dtype=int),
                       y=np.zeros(3), cardinalities=[2, 2, 2])

    def test_cross_without_cardinalities(self):
        schema = make_schema([2, 2])
        with pytest.raises(ValueError):
            CTRDataset(schema=schema, x=np.zeros((3, 2), dtype=int),
                       y=np.zeros(3), cardinalities=[2, 2],
                       x_cross=np.zeros((3, 1), dtype=int))

    def test_cross_shape_mismatch(self):
        schema = make_schema([2, 2])
        with pytest.raises(ValueError):
            CTRDataset(schema=schema, x=np.zeros((3, 2), dtype=int),
                       y=np.zeros(3), cardinalities=[2, 2],
                       x_cross=np.zeros((3, 2), dtype=int),
                       cross_cardinalities=[4, 4])


class TestSplit:
    def test_partition_sizes(self):
        ds = _dataset(100)
        train, val, test = ds.split((0.7, 0.1, 0.2),
                                    rng=np.random.default_rng(1))
        assert len(train) == 70
        assert len(val) == 10
        assert len(test) == 20

    def test_partition_is_disjoint_and_complete(self):
        ds = _dataset(60)
        # Tag rows by a unique id hidden in x_cross to track membership.
        ds.x_cross[:, 0] = np.arange(60)
        parts = ds.split((0.5, 0.25, 0.25), rng=np.random.default_rng(2))
        seen = np.concatenate([p.x_cross[:, 0] for p in parts])
        assert sorted(seen.tolist()) == list(range(60))

    def test_bad_fractions(self):
        with pytest.raises(ValueError):
            _dataset().split((0.5, 0.1))

    def test_no_shuffle_keeps_order(self):
        ds = _dataset(10)
        ds.x_cross[:, 0] = np.arange(10)
        train, test = ds.split((0.5, 0.5), shuffle=False)
        np.testing.assert_array_equal(train.x_cross[:, 0], np.arange(5))

    def test_subsets_share_metadata(self):
        ds = _dataset(20)
        train, _ = ds.split((0.5, 0.5), rng=np.random.default_rng(0))
        assert train.cardinalities == ds.cardinalities
        assert train.cross_cardinalities == ds.cross_cardinalities


class TestBatching:
    def test_batch_sizes(self):
        ds = _dataset(25)
        batches = list(ds.iter_batches(10))
        assert [len(b) for b in batches] == [10, 10, 5]

    def test_drop_last(self):
        ds = _dataset(25)
        batches = list(ds.iter_batches(10, drop_last=True))
        assert [len(b) for b in batches] == [10, 10]

    def test_covers_all_rows_when_shuffled(self):
        ds = _dataset(30)
        ds.x_cross[:, 0] = np.arange(30)
        batches = list(ds.iter_batches(7, shuffle=True,
                                       rng=np.random.default_rng(0)))
        seen = np.concatenate([b.x_cross[:, 0] for b in batches])
        assert sorted(seen.tolist()) == list(range(30))

    def test_batch_has_cross_features(self):
        ds = _dataset(10)
        batch = next(ds.iter_batches(4))
        assert isinstance(batch, Batch)
        assert batch.x_cross is not None

    def test_no_cross_dataset_yields_none(self):
        ds = _dataset(10, with_cross=False)
        batch = next(ds.iter_batches(4))
        assert batch.x_cross is None

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(_dataset().iter_batches(0))

    def test_full_batch(self):
        ds = _dataset(12)
        batch = ds.full_batch()
        assert len(batch) == 12


class TestProperties:
    def test_positive_ratio(self):
        ds = _dataset(1000)
        assert 0.2 < ds.positive_ratio < 0.4

    def test_len_and_counts(self):
        ds = _dataset(50, m=4)
        assert len(ds) == 50
        assert ds.num_fields == 4
        assert ds.num_pairs == 6
