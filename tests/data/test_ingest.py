"""Unit tests for the hardened streaming ingest subsystem."""

import json

import numpy as np
import pytest

from repro.data import (
    ArityError,
    BadLabelError,
    BadNumericError,
    ChunkedIngestor,
    IngestConfig,
    IngestError,
    ResumeError,
    RowParseError,
    SchemaError,
    TruncatedFileError,
    ingest_file,
)
from repro.obs.events import EventBus, MemorySink
from repro.obs.metrics import MetricsRegistry
from repro.resilience import FlakyFile, truncate_file


def write_log(path, rows, header="label,I1,C1"):
    lines = ([header] if header else []) + list(rows)
    path.write_text("\n".join(lines) + "\n")
    return path


CLEAN_ROWS = [
    "1,3,a", "0,5,b", "0,,a", "1,2,c", "0,3,a", "1,7,b",
    "0,1,a", "0,4,c", "1,3,b", "0,6,a",
]


def base_config(**overrides):
    defaults = dict(categorical=["C1"], continuous=["I1"], chunk_rows=4)
    defaults.update(overrides)
    return IngestConfig(**defaults)


class TestConfig:
    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            base_config(on_error="explode")

    def test_headerless_requires_columns(self):
        with pytest.raises(ValueError, match="column_names"):
            base_config(header=False)

    def test_resume_requires_workdir(self):
        with pytest.raises(ValueError, match="workdir"):
            base_config(resume=True)

    def test_quarantine_requires_destination(self):
        with pytest.raises(ValueError, match="quarantine"):
            base_config(on_error="quarantine")

    def test_quarantine_defaults_into_workdir(self, tmp_path):
        config = base_config(on_error="quarantine", workdir=tmp_path / "wd")
        assert str(config.quarantine_path).endswith("quarantine.jsonl")

    def test_overlapping_columns_rejected(self):
        with pytest.raises(ValueError, match="both"):
            IngestConfig(categorical=["I1"], continuous=["I1"])

    def test_fingerprint_tracks_chunking(self):
        assert (base_config(chunk_rows=4).fingerprint()
                != base_config(chunk_rows=8).fingerprint())
        assert (base_config(chunk_rows=4).fingerprint()
                == base_config(chunk_rows=4).fingerprint())


class TestErrorTaxonomy:
    """Each failure mode raises its typed error naming file and line."""

    def run_raise(self, tmp_path, bad_row):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS[:3] + [bad_row])
        return path, lambda: ingest_file(path, base_config())

    def test_arity(self, tmp_path):
        path, run = self.run_raise(tmp_path, "1,2,3,4,5")
        with pytest.raises(ArityError) as excinfo:
            run()
        assert excinfo.value.line_number == 5
        assert str(path) in str(excinfo.value)
        assert excinfo.value.code == "arity"

    def test_bad_label(self, tmp_path):
        _, run = self.run_raise(tmp_path, "2,2,a")
        with pytest.raises(BadLabelError, match="binary"):
            run()

    def test_missing_label(self, tmp_path):
        _, run = self.run_raise(tmp_path, ",2,a")
        with pytest.raises(BadLabelError, match="missing"):
            run()

    def test_bad_numeric(self, tmp_path):
        _, run = self.run_raise(tmp_path, "1,not_a_number,a")
        with pytest.raises(BadNumericError, match="I1"):
            run()

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_bytes(b"label,I1,C1\n1,3,a\n\xff\xfe\x00junk\xff\n")
        with pytest.raises((RowParseError, ArityError)):
            ingest_file(path, base_config())

    def test_typed_errors_are_value_errors(self, tmp_path):
        _, run = self.run_raise(tmp_path, "2,2,a")
        with pytest.raises(ValueError):
            run()


class TestPolicies:
    DIRTY = CLEAN_ROWS + ["2,1,a", "1,xxx,b", "bad"]

    def test_skip_counts_and_drops(self, tmp_path):
        path = write_log(tmp_path / "log.csv", self.DIRTY)
        result = ingest_file(path, base_config(on_error="skip"))
        assert result.report.rows_read == 13
        assert result.report.rows_ok == 10
        assert result.report.rows_skipped == 3
        assert result.report.errors == {"label": 1, "numeric": 1, "arity": 1}
        assert result.dataset.x.shape[0] == 10

    def test_quarantine_sidecar_records(self, tmp_path):
        path = write_log(tmp_path / "log.csv", self.DIRTY)
        qpath = tmp_path / "q.jsonl"
        metrics = MetricsRegistry()
        result = ingest_file(
            path, base_config(on_error="quarantine", quarantine_path=qpath),
            metrics=metrics)
        records = [json.loads(line) for line in
                   qpath.read_text().splitlines()]
        assert len(records) == 3 == result.report.rows_quarantined
        assert metrics.counter("ingest.quarantined").value == 3
        by_code = {r["code"]: r for r in records}
        assert by_code["arity"]["raw"] == "bad"
        assert by_code["numeric"]["line"] == 13
        assert all("reason" in r and "line" in r for r in records)

    def test_all_rows_bad_raises(self, tmp_path):
        path = write_log(tmp_path / "log.csv", ["3,1,a", "4,2,b"])
        with pytest.raises(IngestError, match="no valid rows"):
            ingest_file(path, base_config(on_error="skip"))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("")
        with pytest.raises(IngestError, match="empty"):
            ingest_file(path, base_config())

    def test_blank_lines_invisible(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("label,I1,C1\n1,3,a\n\n0,5,b\n\n")
        result = ingest_file(path, base_config())
        assert result.report.rows_read == 2
        assert result.report.rows_ok == 2


class TestSchemaReconciliation:
    def test_reordered_columns_by_name(self, tmp_path):
        canonical = write_log(tmp_path / "a.csv",
                              ["1,3,a", "0,5,b", "1,2,a"])
        shuffled = write_log(tmp_path / "b.csv",
                             ["3,a,1", "5,b,0", "2,a,1"],
                             header="I1,C1,label")
        r1 = ingest_file(canonical, base_config())
        r2 = ingest_file(shuffled, base_config())
        assert np.array_equal(r1.dataset.x, r2.dataset.x)
        assert np.array_equal(r1.dataset.y, r2.dataset.y)
        assert not r1.report.schema_reordered
        # label-first vs label-last is not a feature reordering
        assert not r2.report.schema_reordered

    def test_feature_reordering_flagged(self, tmp_path):
        path = write_log(tmp_path / "log.csv", ["a,3,1", "b,5,0"],
                         header="C1,I1,label")
        config = IngestConfig(categorical=["C1"], continuous=["I1"])
        # config order is I1 then C1; the file carries C1 first
        result = ingest_file(path, config)
        assert result.report.schema_reordered

    def test_extra_column_ignored_lenient(self, tmp_path):
        path = write_log(tmp_path / "log.csv",
                         ["1,3,a,junk", "0,5,b,junk"],
                         header="label,I1,C1,debug")
        result = ingest_file(path, base_config())
        assert result.report.schema_extra == ["debug"]
        assert result.dataset.x.shape == (2, 2)

    def test_missing_feature_column_lenient(self, tmp_path):
        path = write_log(tmp_path / "log.csv", ["1,a", "0,b"],
                         header="label,C1")
        result = ingest_file(path, base_config())
        assert result.report.schema_missing == ["I1"]
        # the absent continuous column is all-missing: zero-filled
        assert result.pipeline.fill_values["I1"] == 0.0

    def test_strict_mode_rejects_mismatch(self, tmp_path):
        path = write_log(tmp_path / "log.csv", ["1,3,a,junk"],
                         header="label,I1,C1,debug")
        with pytest.raises(SchemaError, match="strict"):
            ingest_file(path, base_config(strict_schema=True))

    def test_missing_label_always_fatal(self, tmp_path):
        path = write_log(tmp_path / "log.csv", ["3,a"], header="I1,C1")
        with pytest.raises(SchemaError, match="label"):
            ingest_file(path, base_config())

    def test_duplicate_header_rejected(self, tmp_path):
        path = write_log(tmp_path / "log.csv", ["1,3,4,a"],
                         header="label,I1,I1,C1")
        with pytest.raises(SchemaError, match="duplicate"):
            ingest_file(path, base_config())

    def test_headerless_with_declared_columns(self, tmp_path):
        with_header = write_log(tmp_path / "a.csv", CLEAN_ROWS)
        headerless = tmp_path / "b.csv"
        headerless.write_text("\n".join(CLEAN_ROWS) + "\n")
        r1 = ingest_file(with_header, base_config())
        r2 = ingest_file(headerless, base_config(
            header=False, column_names=["label", "I1", "C1"]))
        assert np.array_equal(r1.dataset.x, r2.dataset.x)
        assert np.array_equal(r1.dataset.y, r2.dataset.y)


class TestTransientIO:
    def test_flaky_reads_retried(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS)
        flaky = FlakyFile(fail_reads=3)
        result = ingest_file(path, base_config(retries=4), opener=flaky,
                             sleep=lambda _: None)
        assert result.report.retries == 3
        assert flaky.injected == 3
        assert result.report.rows_ok == 10

    def test_flaky_opens_retried(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS)
        flaky = FlakyFile(fail_reads=0, fail_opens=2)
        result = ingest_file(path, base_config(retries=3), opener=flaky,
                             sleep=lambda _: None)
        assert result.report.retries == 2
        assert result.report.rows_ok == 10

    def test_budget_exhausted_raises(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS)
        flaky = FlakyFile(fail_reads=100)
        with pytest.raises(OSError):
            ingest_file(path, base_config(retries=2), opener=flaky,
                        sleep=lambda _: None)


class TestTruncation:
    def test_complete_tail_without_newline_salvaged(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text("label,I1,C1\n1,3,a\n0,5,b")  # no trailing newline
        result = ingest_file(path, base_config())
        assert result.report.truncated_tail
        assert result.report.rows_ok == 2

    def test_partial_tail_classified_truncated(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS)
        truncate_file(path, 4)  # chop into the final record
        result = ingest_file(path, base_config(on_error="skip"))
        assert result.report.truncated_tail
        assert result.report.errors == {"truncated": 1}
        assert result.report.rows_ok == 9

    def test_strict_tail_rejected(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS)
        truncate_file(path, 4)
        with pytest.raises(TruncatedFileError):
            ingest_file(path, base_config(allow_truncated_tail=False))


class TestObservability:
    def test_events_metrics_and_spans(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS + ["bad"])
        sink = MemorySink()
        bus = EventBus([sink])
        metrics = MetricsRegistry()
        ingest_file(path, base_config(on_error="quarantine",
                                      quarantine_path=tmp_path / "q.jsonl"),
                    bus=bus, metrics=metrics)
        types = [event.type for event in sink.events]
        assert "ingest" in types and "quarantine" in types
        kinds = [e.payload["kind"] for e in sink.events
                 if e.type == "ingest"]
        assert "run_start" in kinds and "run_end" in kinds
        span_names = {e.payload["name"] for e in sink.events
                      if e.type == "span"}
        assert {"ingest.run", "ingest.chunk",
                "ingest.validate"} <= span_names
        assert metrics.counter("ingest.rows").value == 11
        assert metrics.counter("ingest.ok").value == 10
        assert metrics.counter("ingest.quarantined").value == 1
        assert metrics.counter("ingest.errors.arity").value == 1

    def test_quarantine_event_payload(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS[:3] + ["9,1,a"])
        sink = MemorySink()
        ingest_file(path, base_config(on_error="quarantine",
                                      quarantine_path=tmp_path / "q.jsonl"),
                    bus=EventBus([sink]))
        [event] = [e for e in sink.events if e.type == "quarantine"]
        assert event.payload["code"] == "label"
        assert event.payload["line"] == 5
        assert event.payload["raw"] == "9,1,a"


class TestResumeSafety:
    def test_resume_without_manifest_runs_fresh(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS)
        result = ingest_file(path, base_config(workdir=tmp_path / "wd",
                                               resume=True))
        assert not result.report.resumed
        assert result.report.rows_ok == 10

    def test_resume_rejects_changed_file(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS)
        config = base_config(workdir=tmp_path / "wd")
        ingest_file(path, config)
        write_log(path, CLEAN_ROWS + ["1,1,a"])  # file grew
        with pytest.raises(ResumeError, match="changed"):
            ingest_file(path, base_config(workdir=tmp_path / "wd",
                                          resume=True))

    def test_resume_rejects_changed_config(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS)
        ingest_file(path, base_config(workdir=tmp_path / "wd"))
        with pytest.raises(ResumeError, match="configuration"):
            ingest_file(path, base_config(workdir=tmp_path / "wd",
                                          resume=True, chunk_rows=8))

    def test_completed_manifest_resumes_to_same_dataset(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS)
        first = ingest_file(path, base_config(workdir=tmp_path / "wd"))
        again = ingest_file(path, base_config(workdir=tmp_path / "wd",
                                              resume=True))
        assert again.report.resumed
        assert np.array_equal(first.dataset.x, again.dataset.x)
        assert np.array_equal(first.dataset.y, again.dataset.y)


class TestPipelineReuse:
    def test_streamed_pipeline_transforms_new_data(self, tmp_path):
        path = write_log(tmp_path / "log.csv", CLEAN_ROWS)
        result = ingest_file(path, base_config())
        columns = {"label": ["1", "0"], "I1": ["3", ""],
                   "C1": ["a", "never_seen"]}
        dataset = result.pipeline.transform(columns)
        assert dataset.x.shape == (2, 2)
        assert dataset.x[1, 1] == 0  # unseen categorical folds to OOV
