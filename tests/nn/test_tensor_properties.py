"""Property-based tests (hypothesis) for the autodiff engine invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, concatenate
from repro.nn.tensor import _unbroadcast

finite_floats = st.floats(min_value=-100, max_value=100,
                          allow_nan=False, allow_infinity=False)


def small_arrays(max_side=4, max_dims=3):
    shapes = st.lists(st.integers(1, max_side), min_size=1,
                      max_size=max_dims).map(tuple)
    return shapes.flatmap(
        lambda s: arrays(np.float64, s, elements=finite_floats))


class TestAlgebraicProperties:
    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_add_commutes(self, data):
        a, b = Tensor(data), Tensor(data * 0.5 + 1)
        np.testing.assert_allclose((a + b).numpy(), (b + a).numpy())

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, data):
        a = Tensor(data)
        np.testing.assert_allclose((-(-a)).numpy(), data)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_mul_by_one_identity(self, data):
        a = Tensor(data)
        np.testing.assert_allclose((a * 1.0).numpy(), data)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_sum_then_backward_gives_ones(self, data):
        a = Tensor(data, requires_grad=True)
        a.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones_like(data))

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_softmax_rows_sum_to_one(self, data):
        probs = Tensor(data).softmax(axis=-1).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-9)
        assert (probs >= 0).all()

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_sigmoid_bounds(self, data):
        out = Tensor(data * 100).sigmoid().numpy()
        assert ((out >= 0) & (out <= 1)).all()

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_relu_nonnegative_and_idempotent(self, data):
        a = Tensor(data)
        once = a.relu().numpy()
        twice = a.relu().relu().numpy()
        assert (once >= 0).all()
        np.testing.assert_array_equal(once, twice)


class TestUnbroadcast:
    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_unbroadcast_restores_shape(self, n, m):
        grad = np.ones((n, m))
        assert _unbroadcast(grad, (m,)).shape == (m,)
        assert _unbroadcast(grad, (1, m)).shape == (1, m)
        assert _unbroadcast(grad, (n, 1)).shape == (n, 1)

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_unbroadcast_sums_mass(self, n, m):
        grad = np.ones((n, m))
        np.testing.assert_allclose(_unbroadcast(grad, (m,)),
                                   np.full(m, float(n)))


class TestConcatenateProperties:
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_concat_shape_and_content(self, n, a, b):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(n, a)))
        y = Tensor(rng.normal(size=(n, b)))
        out = concatenate([x, y], axis=1)
        assert out.shape == (n, a + b)
        np.testing.assert_array_equal(out.numpy()[:, :a], x.numpy())
        np.testing.assert_array_equal(out.numpy()[:, a:], y.numpy())

    @given(st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_concat_gradient_splits(self, a, b):
        x = Tensor(np.zeros((2, a)), requires_grad=True)
        y = Tensor(np.zeros((2, b)), requires_grad=True)
        concatenate([x, y], axis=1).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, a)))
        np.testing.assert_array_equal(y.grad, np.ones((2, b)))
