"""Optimizer ``state_dict`` round-trips: every class, exact continuation.

The contract the checkpoint subsystem relies on: train k steps, snapshot
the optimizer, load the snapshot into a *fresh* instance over identical
parameters, and the next k steps must produce bit-identical parameters
to an uninterrupted run.
"""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.nn.optim import (
    SGD,
    Adagrad,
    Adam,
    FTRLProximal,
    GRDA,
    Optimizer,
    RMSprop,
    SparseAdam,
)

OPTIMIZERS = [
    pytest.param(lambda ps: SGD(ps, lr=1e-2, momentum=0.9), id="SGD"),
    pytest.param(lambda ps: Adam(ps, lr=1e-3), id="Adam"),
    pytest.param(lambda ps: SparseAdam(ps, lr=1e-3), id="SparseAdam"),
    pytest.param(lambda ps: Adagrad(ps, lr=1e-2), id="Adagrad"),
    pytest.param(lambda ps: RMSprop(ps, lr=1e-3), id="RMSprop"),
    pytest.param(lambda ps: FTRLProximal(ps, alpha=0.1), id="FTRLProximal"),
    pytest.param(lambda ps: GRDA(ps, lr=1e-2), id="GRDA"),
]


def _make_params(rng):
    return [Parameter(rng.normal(size=(4, 3)), name="w"),
            Parameter(rng.normal(size=(3,)), name="b")]


def _grads(rng, params):
    """A deterministic sequence of fake gradients for one step."""
    for param in params:
        param.grad = rng.normal(size=param.data.shape)


def _run_steps(opt, params, seed, k):
    rng = np.random.default_rng(seed)
    for _ in range(k):
        _grads(rng, params)
        opt.step()
        opt.zero_grad()


@pytest.mark.parametrize("factory", OPTIMIZERS)
def test_roundtrip_continues_exactly(factory):
    # Reference: 6 uninterrupted steps.
    ref_params = _make_params(np.random.default_rng(0))
    ref_opt = factory(ref_params)
    _run_steps(ref_opt, ref_params, seed=1, k=3)
    snapshot = ref_opt.state_dict()
    _run_steps(ref_opt, ref_params, seed=2, k=3)

    # Candidate: 3 steps, snapshot into a FRESH optimizer, 3 more steps.
    params = _make_params(np.random.default_rng(0))
    first = factory(params)
    _run_steps(first, params, seed=1, k=3)
    fresh = factory(params)
    fresh.load_state_dict(snapshot)
    _run_steps(fresh, params, seed=2, k=3)

    for ref, got in zip(ref_params, params):
        np.testing.assert_array_equal(got.data, ref.data)


@pytest.mark.parametrize("factory", OPTIMIZERS)
def test_state_dict_is_a_deep_snapshot(factory):
    params = _make_params(np.random.default_rng(0))
    opt = factory(params)
    _run_steps(opt, params, seed=1, k=2)
    snapshot = opt.state_dict()
    _run_steps(opt, params, seed=2, k=2)
    # Stepping after the snapshot must not mutate the snapshot's arrays.
    again = opt.state_dict()
    assert any(
        not np.array_equal(snapshot["state"][key][slot],
                           again["state"][key][slot])
        for key in snapshot["state"]
        for slot in snapshot["state"][key]
    ) or snapshot["extra"] != again["extra"]


def test_state_dict_shape():
    params = _make_params(np.random.default_rng(0))
    opt = Adam(params, lr=1e-3)
    _run_steps(opt, params, seed=1, k=1)
    state = opt.state_dict()
    assert set(state) == {"groups", "state", "extra"}
    assert len(state["groups"]) == 1
    assert "params" not in state["groups"][0]
    assert state["groups"][0]["lr"] == pytest.approx(1e-3)
    assert set(state["state"]) == {"0", "1"}
    assert set(state["state"]["0"]) == {"m", "v"}
    assert state["extra"] == {"t": 1}


def test_load_restores_decayed_lr():
    params = _make_params(np.random.default_rng(0))
    opt = Adam(params, lr=1e-3)
    opt.param_groups[0]["lr"] = 2.5e-4  # e.g. after scheduler decay
    snapshot = opt.state_dict()
    fresh = Adam(params, lr=1e-3)
    fresh.load_state_dict(snapshot)
    assert fresh.param_groups[0]["lr"] == pytest.approx(2.5e-4)


def test_load_rejects_parameter_count_mismatch():
    params = _make_params(np.random.default_rng(0))
    opt = Adam(params, lr=1e-3)
    _run_steps(opt, params, seed=1, k=1)
    snapshot = opt.state_dict()
    other = Adam(params[:1], lr=1e-3)
    with pytest.raises(ValueError, match="parameter"):
        other.load_state_dict(snapshot)


def test_load_rejects_foreign_slots():
    params = _make_params(np.random.default_rng(0))
    opt = Adam(params)
    _run_steps(opt, params, seed=1, k=1)
    snapshot = opt.state_dict()
    other = SGD(params, lr=1e-2, momentum=0.9)
    with pytest.raises(KeyError, match="slot"):
        other.load_state_dict(snapshot)


def test_base_optimizer_has_no_slots():
    params = _make_params(np.random.default_rng(0))
    opt = Optimizer(params, {"lr": 1e-2})
    state = opt.state_dict()
    assert state["state"] == {}
    opt.load_state_dict(state)  # round-trips without error
