"""Differential harness: the sparse gradient path must be bit-for-bit
identical to the dense path.

The same OptInter model (fixed mixed architecture, so both the field
table and the cross table train) is trained twice on the same batches —
once with sparse embedding gradients (the default) and once with
``dense_grad=True`` — under each of the four optimizers the sparse path
specialises.  Losses, every parameter array, and checkpoint content
checksums must match *bitwise*, including when the sparse run is
interrupted mid-run, checkpointed, and resumed into fresh objects.

Gradient clipping is deliberately not enabled here: the global-norm
reduction sums per-parameter squares in a different grouping for sparse
vs dense gradients, which is mathematically equal but not bitwise (see
docs/performance.md).
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.architecture import Architecture
from repro.core.optinter import OptInterModel
from repro.nn import (
    GRDA,
    SGD,
    Adam,
    SparseAdam,
    SparseGrad,
    binary_cross_entropy_with_logits,
)
from repro.resilience.checkpoint import TrainingCheckpoint

OPTIMIZERS = {
    "sgd_momentum": lambda params: SGD(params, lr=0.05, momentum=0.9),
    "adam": lambda params: Adam(params, lr=0.01),
    "sparse_adam": lambda params: SparseAdam(params, lr=0.01),
    "grda": lambda params: GRDA(params, lr=0.05, c=1e-4, mu=0.51),
}

STEPS = 6


def _make_model(dataset, dense_grad: bool) -> OptInterModel:
    num_pairs = len(dataset.cross_cardinalities)
    methods = (["memorize", "factorize", "naive"] * num_pairs)[:num_pairs]
    return OptInterModel(
        dataset.cardinalities,
        dataset.cross_cardinalities,
        embed_dim=4,
        cross_embed_dim=4,
        hidden_dims=(16,),
        architecture=Architecture.from_assignment(methods),
        rng=np.random.default_rng(123),
        dense_grad=dense_grad,
    )


def _take_batches(dataset, batch_size: int = 64, steps: int = STEPS):
    batches = []
    while len(batches) < steps:
        for batch in dataset.iter_batches(batch_size, drop_last=True):
            batches.append(batch)
            if len(batches) == steps:
                break
    return batches


def _train(model, optimizer, batches):
    losses = []
    for batch in batches:
        logits = model(batch)
        loss = binary_cross_entropy_with_logits(logits, batch.y)
        loss.backward()
        optimizer.step()
        optimizer.zero_grad()
        losses.append(loss.item())
    return losses


def _param_bytes(model):
    return {name: param.data.tobytes()
            for name, param in model.named_parameters()}


def _checkpoint_checksum(model, optimizer, step: int) -> str:
    """Content checksum of a serialised checkpoint (independent of zip
    framing, so comparable across runs)."""
    blob = TrainingCheckpoint.capture(
        model, optimizer, epoch=0, global_step=step).to_bytes()
    with np.load(io.BytesIO(blob), allow_pickle=False) as archive:
        return str(archive["__checksum__"])


def test_sparse_path_actually_produces_sparse_grads(tiny_splits):
    """Guard against the harness silently comparing dense to dense."""
    train = tiny_splits[0]
    batch = _take_batches(train, steps=1)[0]

    sparse_model = _make_model(train, dense_grad=False)
    loss = binary_cross_entropy_with_logits(sparse_model(batch), batch.y)
    loss.backward()
    field_grad = sparse_model.embedding.table.weight.grad
    cross_grad = sparse_model.cross_embedding.table.weight.grad
    assert isinstance(field_grad, SparseGrad)
    assert isinstance(cross_grad, SparseGrad)
    # On this toy table the batch touches most rows; the memory win at
    # realistic table sizes is asserted by benchmarks/sparse_perf.py.
    assert field_grad.num_rows <= field_grad.shape[0]

    dense_model = _make_model(train, dense_grad=True)
    loss = binary_cross_entropy_with_logits(dense_model(batch), batch.y)
    loss.backward()
    assert isinstance(dense_model.embedding.table.weight.grad, np.ndarray)


@pytest.mark.parametrize("name", sorted(OPTIMIZERS))
def test_sparse_matches_dense_bitwise(tiny_splits, name):
    train = tiny_splits[0]
    batches = _take_batches(train)
    results = {}
    for dense_grad in (False, True):
        model = _make_model(train, dense_grad)
        optimizer = OPTIMIZERS[name](list(model.parameters()))
        losses = _train(model, optimizer, batches)
        results[dense_grad] = (
            losses,
            _param_bytes(model),
            _checkpoint_checksum(model, optimizer, len(batches)),
        )
    sparse, dense = results[False], results[True]
    assert sparse[0] == dense[0], "losses diverged"
    assert sparse[1] == dense[1], "parameters diverged"
    assert sparse[2] == dense[2], "checkpoints diverged"


@pytest.mark.parametrize("name", sorted(OPTIMIZERS))
def test_resume_from_checkpoint_mid_run_bitwise(tiny_splits, name):
    """Sparse run interrupted at step 3 and resumed into fresh objects
    must land exactly where the uninterrupted run (and the dense run)
    does — slot state, active-set caches and all."""
    train = tiny_splits[0]
    batches = _take_batches(train)
    mid = STEPS // 2

    model = _make_model(train, dense_grad=False)
    optimizer = OPTIMIZERS[name](list(model.parameters()))
    full_losses = _train(model, optimizer, batches)

    first = _make_model(train, dense_grad=False)
    first_opt = OPTIMIZERS[name](list(first.parameters()))
    _train(first, first_opt, batches[:mid])
    blob = TrainingCheckpoint.capture(
        first, first_opt, epoch=0, global_step=mid).to_bytes()

    resumed = _make_model(train, dense_grad=False)
    resumed_opt = OPTIMIZERS[name](list(resumed.parameters()))
    TrainingCheckpoint.from_bytes(blob).restore(resumed, resumed_opt)
    resumed_losses = _train(resumed, resumed_opt, batches[mid:])

    assert resumed_losses == full_losses[mid:], "post-resume losses diverged"
    assert _param_bytes(resumed) == _param_bytes(model)
    assert (_checkpoint_checksum(resumed, resumed_opt, STEPS)
            == _checkpoint_checksum(model, optimizer, STEPS))

    dense_model = _make_model(train, dense_grad=True)
    dense_opt = OPTIMIZERS[name](list(dense_model.parameters()))
    _train(dense_model, dense_opt, batches)
    assert _param_bytes(resumed) == _param_bytes(dense_model)
