"""Adagrad, RMSprop and FTRL-Proximal optimizers."""

import numpy as np
import pytest

from repro.nn import Adagrad, FTRLProximal, Parameter, RMSprop


def _quadratic(start=5.0):
    return Parameter(np.array([start]))


def _pull_to_zero(param):
    param.grad = param.data.copy()


class TestAdagrad:
    def test_converges_on_quadratic(self):
        p = _quadratic()
        opt = Adagrad([p], lr=1.0)
        for _ in range(300):
            _pull_to_zero(p)
            opt.step()
        assert abs(p.data[0]) < 0.05

    def test_steps_shrink_over_time(self):
        p = Parameter(np.array([0.0]))
        opt = Adagrad([p], lr=0.1)
        steps = []
        for _ in range(5):
            before = p.data[0]
            p.grad = np.array([1.0])
            opt.step()
            steps.append(abs(p.data[0] - before))
        assert all(a >= b for a, b in zip(steps, steps[1:]))

    def test_weight_decay(self):
        p = Parameter(np.array([2.0]))
        opt = Adagrad([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 2.0

    def test_skips_missing_grad(self):
        p = _quadratic()
        Adagrad([p], lr=0.1).step()
        assert p.data[0] == 5.0


class TestRMSprop:
    def test_converges_on_quadratic(self):
        p = _quadratic()
        opt = RMSprop([p], lr=0.05)
        for _ in range(400):
            _pull_to_zero(p)
            opt.step()
        assert abs(p.data[0]) < 0.05

    def test_adapts_to_gradient_scale(self):
        # Same optimizer settings, gradients differing by 1000x -> the
        # normalised steps end up comparable.
        small, large = Parameter(np.array([0.0])), Parameter(np.array([0.0]))
        opt_s, opt_l = RMSprop([small], lr=0.01), RMSprop([large], lr=0.01)
        for _ in range(10):
            small.grad = np.array([1e-3])
            opt_s.step()
            large.grad = np.array([1.0])
            opt_l.step()
        ratio = abs(small.data[0]) / abs(large.data[0])
        assert 0.5 < ratio < 2.0


class TestFTRLProximal:
    def test_l1_produces_exact_zeros_on_noise(self):
        rng = np.random.default_rng(0)
        p = Parameter(np.zeros(4))
        opt = FTRLProximal([p], alpha=0.1, l1=2.0)
        for _ in range(100):
            # Coordinates 0-2 see pure noise; coordinate 3 a steady signal.
            p.grad = np.concatenate([rng.normal(0, 0.05, 3), [-1.0]])
            opt.step()
        assert (p.data[:3] == 0.0).all()
        assert p.data[3] > 0.0

    def test_no_l1_behaves_like_adaptive_sgd(self):
        p = _quadratic()
        opt = FTRLProximal([p], alpha=1.0, l1=0.0)
        for _ in range(200):
            _pull_to_zero(p)
            opt.step()
        assert abs(p.data[0]) < 0.2

    def test_l2_shrinks_solution(self):
        free, penalised = _quadratic(0.0), _quadratic(0.0)
        opt_free = FTRLProximal([free], alpha=0.5, l2=0.0)
        opt_pen = FTRLProximal([penalised], alpha=0.5, l2=10.0)
        for _ in range(100):
            free.grad = np.array([free.data[0] - 1.0])
            opt_free.step()
            penalised.grad = np.array([penalised.data[0] - 1.0])
            opt_pen.step()
        assert abs(penalised.data[0]) < abs(free.data[0])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            FTRLProximal([_quadratic()], alpha=0.0)

    def test_trains_logistic_regression(self, tiny_splits):
        """FTRL is the classic LR-for-CTR optimizer; verify end to end."""
        from repro.models import LogisticRegression
        from repro.training import Trainer, evaluate_model

        train, val, test = tiny_splits
        model = LogisticRegression(train.cardinalities,
                                   rng=np.random.default_rng(0))
        opt = FTRLProximal(model.parameters(), alpha=0.5, l1=1e-4)
        Trainer(model, opt, batch_size=256, max_epochs=6,
                rng=np.random.default_rng(0)).fit(train, val)
        assert evaluate_model(model, test)["auc"] > 0.55
