"""Optimizer behaviour: SGD, Adam, GRDA and parameter groups."""

import numpy as np
import pytest

from repro.nn import Adam, GRDA, Parameter, SGD


def _quadratic_param(start=5.0):
    """A parameter whose gradient pulls it towards zero: L = 0.5 x^2."""
    return Parameter(np.array([start]))


def _set_quadratic_grad(param):
    param.grad = param.data.copy()


class TestSGD:
    def test_plain_step(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        _set_quadratic_grad(p)
        opt.step()
        np.testing.assert_allclose(p.data, [4.5])

    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.2)
        for _ in range(100):
            _set_quadratic_grad(p)
            opt.step()
        assert abs(p.data[0]) < 1e-4

    def test_momentum_accelerates(self):
        plain, heavy = _quadratic_param(), _quadratic_param()
        opt_plain = SGD([plain], lr=0.01)
        opt_heavy = SGD([heavy], lr=0.01, momentum=0.9)
        for _ in range(20):
            _set_quadratic_grad(plain)
            opt_plain.step()
            _set_quadratic_grad(heavy)
            opt_heavy.step()
        assert abs(heavy.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        np.testing.assert_allclose(p.data, [0.9])

    def test_skips_none_grad(self):
        p = _quadratic_param()
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set
        np.testing.assert_allclose(p.data, [5.0])


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, |first step| == lr regardless of grad scale.
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1e-3])
        opt.step()
        np.testing.assert_allclose(p.data, [0.9], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            _set_quadratic_grad(p)
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_zero_grad(self):
        p = _quadratic_param()
        opt = Adam([p])
        p.grad = np.ones(1)
        opt.zero_grad()
        assert p.grad is None

    def test_param_groups_use_own_lr(self):
        fast, slow = Parameter(np.array([1.0])), Parameter(np.array([1.0]))
        opt = Adam([
            {"params": [fast], "lr": 0.5},
            {"params": [slow], "lr": 0.01},
        ])
        fast.grad = np.ones(1)
        slow.grad = np.ones(1)
        opt.step()
        assert abs(1.0 - fast.data[0]) > abs(1.0 - slow.data[0])

    def test_weight_decay_applies(self):
        p = Parameter(np.array([2.0]))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 2.0

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            Adam([])


class TestGRDA:
    def test_drives_useless_coordinates_to_zero(self):
        rng = np.random.default_rng(0)
        p = Parameter(np.array([0.01, 1.0]))
        opt = GRDA([p], lr=0.05, c=0.05, mu=0.8)
        for _ in range(200):
            # Coordinate 0 receives pure noise; coordinate 1 a steady pull
            # towards 1 (gradient of 0.5*(x-1)^2).
            p.grad = np.array([rng.normal(0, 0.01), p.data[1] - 1.0])
            opt.step()
        assert p.data[0] == 0.0
        assert p.data[1] > 0.5

    def test_produces_exact_zeros(self):
        p = Parameter(np.array([0.1]))
        opt = GRDA([p], lr=0.01, c=1.0, mu=0.8)
        for _ in range(200):
            p.grad = np.array([0.0])
            opt.step()
        assert p.data[0] == 0.0

    def test_strong_signal_survives(self):
        p = Parameter(np.array([0.0]))
        opt = GRDA([p], lr=0.05, c=1e-4, mu=0.5)
        for _ in range(100):
            p.grad = np.array([-1.0])  # constant pull upward
            opt.step()
        assert p.data[0] > 0.1
