"""Finite-difference gradient checking utilities for the autodiff engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import SparseGrad, Tensor


def numeric_gradient(fn: Callable[[], Tensor], tensor: Tensor,
                     eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued ``fn`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn().item()
        flat[i] = original - eps
        minus = fn().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def assert_gradients_close(fn: Callable[[], Tensor],
                           tensors: Sequence[Tensor],
                           atol: float = 1e-6, rtol: float = 1e-4) -> None:
    """Check analytic gradients of scalar ``fn`` against finite differences."""
    for t in tensors:
        t.grad = None
    out = fn()
    assert out.size == 1, "gradcheck needs a scalar output"
    out.backward()
    for idx, t in enumerate(tensors):
        assert t.grad is not None, f"tensor {idx} received no gradient"
        analytic = (t.grad.to_dense() if isinstance(t.grad, SparseGrad)
                    else t.grad)
        numeric = numeric_gradient(fn, t)
        np.testing.assert_allclose(
            analytic, numeric, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for tensor {idx}",
        )
