"""Initialisation scheme properties."""

import numpy as np

from repro.nn import init


class TestXavierUniform:
    def test_bound(self, rng):
        w = init.xavier_uniform((50, 30), rng)
        bound = np.sqrt(6.0 / 80)
        assert np.abs(w).max() <= bound

    def test_roughly_zero_mean(self, rng):
        w = init.xavier_uniform((200, 200), rng)
        assert abs(w.mean()) < 0.01

    def test_higher_rank_fan_out(self, rng):
        w = init.xavier_uniform((10, 4, 5), rng)
        bound = np.sqrt(6.0 / (10 + 20))
        assert np.abs(w).max() <= bound

    def test_1d_shape(self, rng):
        w = init.xavier_uniform((16,), rng)
        assert w.shape == (16,)


class TestXavierNormal:
    def test_std(self, rng):
        w = init.xavier_normal((400, 400), rng)
        expected_std = np.sqrt(2.0 / 800)
        assert abs(w.std() - expected_std) / expected_std < 0.1


class TestConstants:
    def test_zeros_ones(self):
        assert (init.zeros((3, 2)) == 0).all()
        assert (init.ones((3, 2)) == 1).all()

    def test_uniform_bound(self, rng):
        w = init.uniform((100,), rng, bound=0.01)
        assert np.abs(w).max() <= 0.01


class TestDeterminism:
    def test_same_seed_same_weights(self):
        a = init.xavier_uniform((5, 5), np.random.default_rng(1))
        b = init.xavier_uniform((5, 5), np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)
