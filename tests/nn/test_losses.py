"""Loss correctness and numerical stability."""

import numpy as np
import pytest

from repro.nn import Tensor, binary_cross_entropy, binary_cross_entropy_with_logits

from .gradcheck import assert_gradients_close


class TestBCEWithLogits:
    def test_matches_naive_formula(self, rng):
        logits = rng.normal(size=10)
        targets = (rng.random(10) > 0.5).astype(float)
        loss = binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        probs = 1 / (1 + np.exp(-logits))
        expected = -np.mean(targets * np.log(probs)
                            + (1 - targets) * np.log(1 - probs))
        np.testing.assert_allclose(loss, expected, rtol=1e-10)

    def test_stable_at_extreme_logits(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        targets = np.array([1.0, 0.0])
        loss = binary_cross_entropy_with_logits(logits, targets).item()
        assert np.isfinite(loss)
        assert loss < 1e-6

    def test_worst_case_is_large_but_finite(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        targets = np.array([0.0, 1.0])
        loss = binary_cross_entropy_with_logits(logits, targets).item()
        assert np.isfinite(loss)
        assert loss > 100

    def test_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=6), requires_grad=True)
        targets = (rng.random(6) > 0.5).astype(float)
        assert_gradients_close(
            lambda: binary_cross_entropy_with_logits(logits, targets),
            [logits])

    def test_gradient_is_sigmoid_minus_target(self, rng):
        logits = Tensor(rng.normal(size=5), requires_grad=True)
        targets = np.array([1.0, 0.0, 1.0, 0.0, 1.0])
        loss = binary_cross_entropy_with_logits(logits, targets)
        loss.backward()
        probs = 1 / (1 + np.exp(-logits.data))
        np.testing.assert_allclose(logits.grad, (probs - targets) / 5,
                                   rtol=1e-8)

    def test_reshapes_targets(self, rng):
        logits = Tensor(rng.normal(size=(4, 1)))
        targets = np.zeros(4)
        loss = binary_cross_entropy_with_logits(logits, targets)
        assert np.isfinite(loss.item())


class TestBCEFromProbs:
    def test_perfect_prediction_near_zero(self):
        assert binary_cross_entropy(np.array([1.0, 0.0]),
                                    np.array([1.0, 0.0])) < 1e-10

    def test_clips_zero_probabilities(self):
        loss = binary_cross_entropy(np.array([0.0]), np.array([1.0]))
        assert np.isfinite(loss)

    def test_uniform_prediction_is_log2(self):
        loss = binary_cross_entropy(np.full(10, 0.5),
                                    (np.arange(10) % 2).astype(float))
        np.testing.assert_allclose(loss, np.log(2), rtol=1e-12)

    def test_agrees_with_logit_version(self, rng):
        logits = rng.normal(size=20)
        targets = (rng.random(20) > 0.3).astype(float)
        from_probs = binary_cross_entropy(1 / (1 + np.exp(-logits)), targets)
        from_logits = binary_cross_entropy_with_logits(Tensor(logits),
                                                       targets).item()
        np.testing.assert_allclose(from_probs, from_logits, rtol=1e-9)
