"""BatchNorm1d and PReLU."""

import numpy as np
import pytest

from repro.nn import BatchNorm1d, PReLU, Tensor

from .gradcheck import assert_gradients_close


class TestBatchNorm1d:
    def test_training_normalises_batch(self, rng):
        bn = BatchNorm1d(4)
        x = Tensor(rng.normal(5.0, 3.0, size=(64, 4)))
        out = bn(x).numpy()
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_updated(self, rng):
        bn = BatchNorm1d(3, momentum=0.5)
        x = Tensor(rng.normal(2.0, 1.0, size=(128, 3)))
        bn(x)
        assert np.abs(bn.running_mean - 1.0).max() < 1.5  # moved toward 2

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm1d(3, momentum=1.0)  # adopt batch stats fully
        x = Tensor(rng.normal(4.0, 2.0, size=(256, 3)))
        bn(x)
        bn.eval()
        single = bn(Tensor(x.numpy()[:1])).numpy()
        assert np.isfinite(single).all()

    def test_eval_handles_single_row(self, rng):
        bn = BatchNorm1d(3)
        bn.eval()
        out = bn(Tensor(rng.normal(size=(1, 3))))
        assert out.shape == (1, 3)

    def test_training_single_row_rejected(self, rng):
        bn = BatchNorm1d(3)
        with pytest.raises(ValueError):
            bn(Tensor(rng.normal(size=(1, 3))))

    def test_non_2d_rejected(self, rng):
        bn = BatchNorm1d(3)
        with pytest.raises(ValueError):
            bn(Tensor(rng.normal(size=(2, 3, 3))))

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3, momentum=0.0)

    def test_gamma_beta_trainable(self, rng):
        bn = BatchNorm1d(3)
        x = Tensor(rng.normal(size=(8, 3)), requires_grad=True)
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None
        assert x.grad is not None


class TestPReLU:
    def test_positive_passthrough(self):
        prelu = PReLU()
        x = Tensor(np.array([1.0, 2.0]))
        np.testing.assert_allclose(prelu(x).numpy(), [1.0, 2.0])

    def test_negative_scaled(self):
        prelu = PReLU(init_slope=0.1)
        x = Tensor(np.array([-1.0, -2.0]))
        np.testing.assert_allclose(prelu(x).numpy(), [-0.1, -0.2])

    def test_zero_slope_is_relu(self, rng):
        prelu = PReLU(init_slope=0.0)
        x = Tensor(rng.normal(size=10))
        np.testing.assert_allclose(prelu(x).numpy(), x.relu().numpy())

    def test_slope_one_is_identity(self, rng):
        prelu = PReLU(init_slope=1.0)
        x = Tensor(rng.normal(size=10))
        np.testing.assert_allclose(prelu(x).numpy(), x.numpy())

    def test_per_channel_slopes(self):
        prelu = PReLU(num_parameters=3)
        prelu.slope.data = np.array([0.0, 0.5, 1.0])
        x = Tensor(np.full((2, 3), -2.0))
        out = prelu(x).numpy()
        np.testing.assert_allclose(out[0], [0.0, -1.0, -2.0])

    def test_slope_gradient(self, rng):
        prelu = PReLU()
        x = Tensor(np.array([-1.0, -3.0, 2.0]), requires_grad=True)
        assert_gradients_close(lambda: prelu(x).sum(), [x, prelu.slope])

    def test_registered_as_parameter(self):
        assert len(PReLU().parameters()) == 1
