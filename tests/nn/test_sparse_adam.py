"""SparseAdam: lazy row-sparse updates for embedding tables."""

import numpy as np
import pytest

from repro.nn import Adam, Parameter, SparseAdam


class TestDenseEquivalence:
    def test_matches_adam_when_all_rows_touched(self, rng):
        init = rng.normal(size=(5, 3))
        dense = Parameter(init.copy())
        sparse = Parameter(init.copy())
        opt_dense = Adam([dense], lr=0.01)
        opt_sparse = SparseAdam([sparse], lr=0.01)
        for _ in range(25):
            grad = rng.normal(size=(5, 3))
            dense.grad = grad.copy()
            sparse.grad = grad.copy()
            opt_dense.step()
            opt_sparse.step()
        np.testing.assert_allclose(sparse.data, dense.data, rtol=1e-12)

    def test_matches_adam_on_1d_params(self, rng):
        init = rng.normal(size=4)
        dense, sparse = Parameter(init.copy()), Parameter(init.copy())
        opt_dense, opt_sparse = Adam([dense], lr=0.02), SparseAdam([sparse], lr=0.02)
        for _ in range(10):
            grad = rng.normal(size=4)
            dense.grad = grad.copy()
            sparse.grad = grad.copy()
            opt_dense.step()
            opt_sparse.step()
        np.testing.assert_allclose(sparse.data, dense.data, rtol=1e-12)


class TestSparsity:
    def test_untouched_rows_frozen(self, rng):
        init = rng.normal(size=(6, 2))
        p = Parameter(init.copy())
        opt = SparseAdam([p], lr=0.05)
        for _ in range(15):
            grad = np.zeros((6, 2))
            grad[2] = rng.normal(size=2)
            p.grad = grad
            opt.step()
        np.testing.assert_array_equal(np.delete(p.data, 2, axis=0),
                                      np.delete(init, 2, axis=0))
        assert np.abs(p.data[2] - init[2]).max() > 0

    def test_all_zero_gradient_noop(self, rng):
        init = rng.normal(size=(4, 2))
        p = Parameter(init.copy())
        opt = SparseAdam([p], lr=0.05)
        p.grad = np.zeros((4, 2))
        opt.step()
        np.testing.assert_array_equal(p.data, init)

    def test_lazy_decay_shrinks_stale_momentum(self, rng):
        """A row revisited after a long gap moves less than one revisited
        immediately, because its first moment decayed in between."""
        p_fresh = Parameter(np.zeros((2, 1)))
        p_stale = Parameter(np.zeros((2, 1)))
        opt_fresh = SparseAdam([p_fresh], lr=0.1)
        opt_stale = SparseAdam([p_stale], lr=0.1)
        # Build momentum on row 0 in both optimizers.
        for _ in range(5):
            for p, opt in ((p_fresh, opt_fresh), (p_stale, opt_stale)):
                g = np.zeros((2, 1))
                g[0] = 1.0
                p.grad = g
                opt.step()
        # Fresh: row 0 coasts on the next step with a tiny gradient now.
        before_fresh = p_fresh.data[0].copy()
        g = np.zeros((2, 1)); g[0] = 1e-12
        p_fresh.grad = g
        opt_fresh.step()
        step_fresh = np.abs(p_fresh.data[0] - before_fresh)
        # Stale: 30 idle steps (touching row 1) first, then the same tiny
        # gradient on row 0 — its decayed momentum moves it less.
        for _ in range(30):
            g = np.zeros((2, 1)); g[1] = 1.0
            p_stale.grad = g
            opt_stale.step()
        before_stale = p_stale.data[0].copy()
        g = np.zeros((2, 1)); g[0] = 1e-12
        p_stale.grad = g
        opt_stale.step()
        step_stale = np.abs(p_stale.data[0] - before_stale)
        assert step_stale[0] < step_fresh[0]

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([[5.0]]))
        opt = SparseAdam([p], lr=0.3)
        for _ in range(200):
            p.grad = p.data.copy()
            opt.step()
        assert abs(p.data[0, 0]) < 1e-2


class TestTraining:
    def test_trains_embedding_model(self, tiny_splits):
        from repro.models import FNN
        from repro.training import Trainer, evaluate_model

        train, val, test = tiny_splits
        model = FNN(train.cardinalities, embed_dim=4, hidden_dims=(16,),
                    rng=np.random.default_rng(0))
        opt = SparseAdam(model.parameters(), lr=1e-2)
        Trainer(model, opt, batch_size=256, max_epochs=8,
                rng=np.random.default_rng(1)).fit(train, val)
        assert evaluate_model(model, test)["auc"] > 0.55
