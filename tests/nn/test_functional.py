"""Functional ops: parity with layer classes and utility correctness."""

import numpy as np
import pytest

from repro.nn import LayerNorm, Tensor, functional as F

from .gradcheck import assert_gradients_close


class TestActivations:
    def test_relu_matches_method(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_array_equal(F.relu(x).numpy(), x.relu().numpy())

    def test_sigmoid_symmetry(self, rng):
        x = Tensor(rng.normal(size=10))
        plus = F.sigmoid(x).numpy()
        minus = F.sigmoid(-x).numpy()
        np.testing.assert_allclose(plus + minus, 1.0, rtol=1e-12)

    def test_tanh_range(self, rng):
        out = F.tanh(Tensor(rng.normal(size=20) * 10)).numpy()
        assert (np.abs(out) <= 1.0).all()


class TestLogSoftmax:
    def test_matches_naive_composition(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        expected = np.log(x.softmax(axis=-1).numpy())
        np.testing.assert_allclose(F.log_softmax(x).numpy(), expected,
                                   rtol=1e-10)

    def test_stable_at_large_logits(self):
        x = Tensor(np.array([[1000.0, 0.0, -1000.0]]))
        out = F.log_softmax(x).numpy()
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0, 0], 0.0, atol=1e-9)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        weights = Tensor(rng.normal(size=(2, 4)))
        assert_gradients_close(lambda: (F.log_softmax(x) * weights).sum(),
                               [x])


class TestLayerNormFunctional:
    def test_matches_module(self, rng):
        ln = LayerNorm(6)
        x = Tensor(rng.normal(size=(3, 6)))
        module_out = ln(x).numpy()
        functional_out = F.layer_norm(x, ln.gamma, ln.beta, eps=ln.eps).numpy()
        np.testing.assert_allclose(module_out, functional_out)


class TestLinearFunctional:
    def test_affine(self, rng):
        x = Tensor(rng.normal(size=(2, 3)))
        w = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=4))
        np.testing.assert_allclose(F.linear(x, w, b).numpy(),
                                   x.numpy() @ w.numpy() + b.numpy())

    def test_no_bias(self, rng):
        x = Tensor(rng.normal(size=(2, 3)))
        w = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(F.linear(x, w).numpy(),
                                   x.numpy() @ w.numpy())


class TestDropoutFunctional:
    def test_eval_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_array_equal(out.numpy(), x.numpy())

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, rng)


class TestOneHot:
    def test_shape_and_values(self):
        out = F.one_hot(np.array([0, 2, 1]), num_classes=3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_2d_input(self):
        out = F.one_hot(np.array([[0, 1], [2, 0]]), num_classes=3)
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), num_classes=3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), num_classes=3)


class TestPairwiseHelpers:
    def test_inner_products(self, rng):
        emb = Tensor(rng.normal(size=(2, 3, 4)))
        idx_i = np.array([0, 0, 1])
        idx_j = np.array([1, 2, 2])
        out = F.inner_products(emb, idx_i, idx_j).numpy()
        e = emb.numpy()
        expected = np.stack([
            (e[:, 0] * e[:, 1]).sum(-1),
            (e[:, 0] * e[:, 2]).sum(-1),
            (e[:, 1] * e[:, 2]).sum(-1),
        ], axis=1)
        np.testing.assert_allclose(out, expected)

    def test_hadamard_products_shape(self, rng):
        emb = Tensor(rng.normal(size=(2, 4, 5)))
        idx_i, idx_j = np.array([0, 1]), np.array([2, 3])
        assert F.hadamard_products(emb, idx_i, idx_j).shape == (2, 2, 5)

    def test_mean_pool(self, rng):
        a = Tensor(np.full((2, 3), 1.0))
        b = Tensor(np.full((2, 3), 3.0))
        np.testing.assert_allclose(F.mean_pool([a, b]).numpy(), 2.0)

    def test_mean_pool_empty(self):
        with pytest.raises(ValueError):
            F.mean_pool([])


class TestClipByGlobalNorm:
    def test_no_clip_when_small(self):
        grads = [np.array([0.1, 0.1])]
        out = F.clip_by_global_norm(grads, max_norm=10.0)
        np.testing.assert_array_equal(out[0], grads[0])

    def test_clips_to_norm(self):
        grads = [np.array([3.0, 4.0])]  # norm 5
        out = F.clip_by_global_norm(grads, max_norm=1.0)
        np.testing.assert_allclose(np.linalg.norm(out[0]), 1.0)

    def test_joint_norm(self):
        grads = [np.array([3.0]), np.array([4.0])]  # joint norm 5
        out = F.clip_by_global_norm(grads, max_norm=1.0)
        joint = np.sqrt(sum((g**2).sum() for g in out))
        np.testing.assert_allclose(joint, 1.0)

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            F.clip_by_global_norm([np.ones(2)], max_norm=0.0)
