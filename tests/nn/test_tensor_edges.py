"""Tensor edge cases: error paths, odd shapes, dtype handling."""

import threading

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, embedding_lookup, stack, where
from repro.nn.tensor import is_grad_enabled, no_grad


class TestConstruction:
    def test_scalar_input(self):
        t = Tensor(3.5)
        assert t.shape == ()
        assert t.item() == 3.5

    def test_list_input(self):
        t = Tensor([1, 2, 3])
        assert t.dtype == np.float64
        assert t.shape == (3,)

    def test_integer_array_cast_to_float(self):
        t = Tensor(np.arange(4))
        assert t.dtype == np.float64

    def test_item_multi_element_rejected(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_repr_mentions_shape(self):
        assert "shape=(2, 3)" in repr(Tensor(np.zeros((2, 3))))


class TestArithmeticEdges:
    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_scalar_tensor_ops(self):
        a = Tensor(2.0, requires_grad=True)
        (a * a).backward()
        np.testing.assert_allclose(a.grad, 4.0)

    def test_chain_of_many_ops(self, rng):
        a = Tensor(rng.normal(size=5), requires_grad=True)
        out = a
        for _ in range(50):
            out = out * 1.01 + 0.001
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.full(5, 1.01**50), rtol=1e-10)

    def test_broadcast_three_ways(self, rng):
        a = Tensor(rng.normal(size=(2, 1, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        out = (a + b).sum()
        out.backward()
        assert a.grad.shape == (2, 1, 4)
        assert b.grad.shape == (3, 1)
        np.testing.assert_allclose(a.grad, np.full((2, 1, 4), 3.0))
        np.testing.assert_allclose(b.grad, np.full((3, 1), 8.0))


class TestReductionsEdges:
    def test_sum_negative_axis(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        a.sum(axis=-1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_of_scalar_like(self):
        a = Tensor(np.array([7.0]), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_max_with_all_ties(self):
        a = Tensor(np.full((2, 3), 5.0), requires_grad=True)
        a.max(axis=1).sum().backward()
        # Ties split the gradient evenly: each coordinate gets 1/3.
        np.testing.assert_allclose(a.grad, np.full((2, 3), 1 / 3))


class TestIndexingEdges:
    def test_boolean_mask(self, rng):
        a = Tensor(rng.normal(size=6), requires_grad=True)
        mask = np.array([True, False, True, False, True, False])
        a[mask].sum().backward()
        np.testing.assert_allclose(a.grad, mask.astype(float))

    def test_single_element(self, rng):
        a = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        a[1, 2].backward()
        expected = np.zeros((3, 3))
        expected[1, 2] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_negative_index(self, rng):
        a = Tensor(rng.normal(size=4), requires_grad=True)
        a[-1].backward()
        np.testing.assert_allclose(a.grad, [0, 0, 0, 1.0])


class TestGraphEdges:
    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate([])

    def test_grad_flag_infects_outputs(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3))
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_no_grad_restores_state_on_exception(self):
        assert is_grad_enabled()
        with pytest.raises(RuntimeError):
            with no_grad():
                assert not is_grad_enabled()
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_is_per_thread(self):
        """One thread inside no_grad must not turn autograd off for
        another — concurrent serving threads score under no_grad while
        a trainer elsewhere still needs its graph."""
        inside, release = threading.Event(), threading.Event()

        def worker():
            with no_grad():
                inside.set()
                release.wait(5.0)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert inside.wait(5.0)
            assert is_grad_enabled()
            a = Tensor(np.ones(3), requires_grad=True)
            assert (a * 2.0).requires_grad
        finally:
            release.set()
            thread.join(5.0)
        assert is_grad_enabled()

    def test_interleaved_no_grad_exits_do_not_leak(self):
        """enter(A), enter(B), exit(A), exit(B) — the save/restore
        interleaving that used to leave grads off process-wide."""
        order = [threading.Event() for _ in range(3)]

        def a():
            with no_grad():
                order[0].set()          # A entered
                order[1].wait(5.0)      # ... B entered
            order[2].set()              # A exited

        def b():
            order[0].wait(5.0)
            with no_grad():
                order[1].set()
                order[2].wait(5.0)      # ... A exited while B inside

        threads = [threading.Thread(target=f) for f in (a, b)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        assert is_grad_enabled()
        fresh = []
        probe = threading.Thread(target=lambda: fresh.append(
            is_grad_enabled()))
        probe.start()
        probe.join(5.0)
        assert fresh == [True]

    def test_backward_twice_accumulates(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        out = (a * 2.0).sum()
        out.backward()
        first = a.grad.copy()
        out2 = (a * 2.0).sum()
        out2.backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_zero_grad_resets(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        (a * 3.0).sum().backward()
        a.zero_grad()
        assert a.grad is None


class TestEmbeddingLookupEdges:
    def test_scalar_index(self, rng):
        table = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        out = embedding_lookup(table, np.array(2))
        assert out.shape == (2,)

    def test_3d_indices(self, rng):
        table = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        idx = np.zeros((2, 3, 4), dtype=int)
        out = embedding_lookup(table, idx)
        assert out.shape == (2, 3, 4, 2)
        out.sum().backward()
        np.testing.assert_allclose(table.grad[0], np.full(2, 24.0))


class TestWhereEdges:
    def test_where_with_raw_arrays(self):
        cond = np.array([True, False])
        out = where(cond, np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        np.testing.assert_allclose(out.numpy(), [1.0, 2.0])

    def test_stack_mixed_grad_flags(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=3))
        stack([a, b]).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        assert b.grad is None
