"""Learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CosineAnnealingLR,
    ExponentialLR,
    Parameter,
    StepLR,
    WarmupLR,
)


def _optimizer(lr=0.1, groups=1):
    params = [{"params": [Parameter(np.ones(1))], "lr": lr * (i + 1)}
              for i in range(groups)]
    return Adam(params)


class TestStepLR:
    def test_decays_at_boundaries(self):
        opt = _optimizer(lr=0.1)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.param_groups[0]["lr"])
        np.testing.assert_allclose(lrs, [0.1, 0.01, 0.01, 0.001, 0.001])

    def test_multiple_groups_scaled_independently(self):
        opt = _optimizer(lr=0.1, groups=2)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        np.testing.assert_allclose(opt.param_groups[0]["lr"], 0.05)
        np.testing.assert_allclose(opt.param_groups[1]["lr"], 0.1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            StepLR(_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(_optimizer(), step_size=1, gamma=0.0)


class TestExponentialLR:
    def test_geometric_decay(self):
        opt = _optimizer(lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        for expected in (0.5, 0.25, 0.125):
            sched.step()
            np.testing.assert_allclose(opt.param_groups[0]["lr"], expected)

    def test_gamma_one_constant(self):
        opt = _optimizer(lr=0.3)
        sched = ExponentialLR(opt, gamma=1.0)
        sched.step()
        assert opt.param_groups[0]["lr"] == 0.3


class TestCosineAnnealingLR:
    def test_endpoints(self):
        opt = _optimizer(lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        np.testing.assert_allclose(opt.param_groups[0]["lr"], 0.0, atol=1e-12)

    def test_midpoint_half(self):
        opt = _optimizer(lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        np.testing.assert_allclose(opt.param_groups[0]["lr"], 0.5, atol=1e-12)

    def test_stays_at_min_past_t_max(self):
        opt = _optimizer(lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=3, eta_min=0.01)
        for _ in range(10):
            sched.step()
        np.testing.assert_allclose(opt.param_groups[0]["lr"], 0.01)

    def test_monotone_decreasing(self):
        opt = _optimizer(lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=8)
        lrs = []
        for _ in range(8):
            sched.step()
            lrs.append(opt.param_groups[0]["lr"])
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))


class TestWarmupLR:
    def test_starts_low_and_reaches_base(self):
        opt = _optimizer(lr=1.0)
        sched = WarmupLR(opt, warmup_epochs=4)
        assert opt.param_groups[0]["lr"] < 1.0
        lrs = []
        for _ in range(6):
            sched.step()
            lrs.append(opt.param_groups[0]["lr"])
        assert all(a <= b + 1e-12 for a, b in zip(lrs, lrs[1:]))
        np.testing.assert_allclose(lrs[-1], 1.0)

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            WarmupLR(_optimizer(), warmup_epochs=0)


class TestWithTrainer:
    def test_scheduler_composes_with_training(self, tiny_splits, rng):
        from repro.models import LogisticRegression
        from repro.training import Trainer

        train, val, _ = tiny_splits
        model = LogisticRegression(train.cardinalities, rng=rng)
        opt = Adam(model.parameters(), lr=0.05)
        sched = ExponentialLR(opt, gamma=0.5)
        trainer = Trainer(model, opt, batch_size=256, max_epochs=1, rng=rng)
        trainer.fit(train)
        sched.step()
        trainer.fit(train)
        np.testing.assert_allclose(opt.param_groups[0]["lr"], 0.025)
