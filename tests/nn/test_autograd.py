"""Gradient checks: every autodiff op against central finite differences."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, embedding_lookup, stack, where

from .gradcheck import assert_gradients_close


def _tensor(rng, *shape, positive=False):
    data = rng.normal(0.0, 1.0, size=shape)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestArithmeticGradients:
    def test_add(self, rng):
        a, b = _tensor(rng, 3, 4), _tensor(rng, 3, 4)
        assert_gradients_close(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self, rng):
        a, b = _tensor(rng, 3, 4), _tensor(rng, 4)
        assert_gradients_close(lambda: (a + b).sum(), [a, b])

    def test_mul(self, rng):
        a, b = _tensor(rng, 2, 5), _tensor(rng, 2, 5)
        assert_gradients_close(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast_scalar_shape(self, rng):
        a, b = _tensor(rng, 2, 5), _tensor(rng, 1)
        assert_gradients_close(lambda: (a * b).sum(), [a, b])

    def test_sub(self, rng):
        a, b = _tensor(rng, 4), _tensor(rng, 4)
        assert_gradients_close(lambda: (a - b).sum(), [a, b])

    def test_div(self, rng):
        a = _tensor(rng, 3, 3)
        b = _tensor(rng, 3, 3, positive=True)
        assert_gradients_close(lambda: (a / b).sum(), [a, b])

    def test_neg(self, rng):
        a = _tensor(rng, 5)
        assert_gradients_close(lambda: (-a).sum(), [a])

    def test_pow(self, rng):
        a = _tensor(rng, 4, positive=True)
        assert_gradients_close(lambda: (a**3).sum(), [a])

    def test_pow_negative_exponent(self, rng):
        a = _tensor(rng, 4, positive=True)
        assert_gradients_close(lambda: (a**-0.5).sum(), [a])

    def test_rsub_rdiv(self, rng):
        a = _tensor(rng, 3, positive=True)
        assert_gradients_close(lambda: (2.0 - a).sum(), [a])
        assert_gradients_close(lambda: (2.0 / a).sum(), [a])


class TestMatmulGradients:
    def test_matmul_2d(self, rng):
        a, b = _tensor(rng, 3, 4), _tensor(rng, 4, 2)
        assert_gradients_close(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self, rng):
        a, b = _tensor(rng, 5, 3, 4), _tensor(rng, 5, 4, 2)
        assert_gradients_close(lambda: (a @ b).sum(), [a, b])

    def test_matmul_broadcast_batch(self, rng):
        # [n, P, 1, d] @ [P, d, d] used by FmFM and PIN.
        a, b = _tensor(rng, 2, 3, 1, 4), _tensor(rng, 3, 4, 4)
        assert_gradients_close(lambda: (a @ b).sum(), [a, b])


class TestReductionGradients:
    def test_sum_all(self, rng):
        a = _tensor(rng, 3, 4)
        assert_gradients_close(lambda: a.sum(), [a])

    def test_sum_axis(self, rng):
        a = _tensor(rng, 3, 4, 2)
        assert_gradients_close(lambda: a.sum(axis=1).sum(), [a])

    def test_sum_axis_tuple(self, rng):
        a = _tensor(rng, 3, 4, 2)
        assert_gradients_close(lambda: a.sum(axis=(1, 2)).sum(), [a])

    def test_sum_keepdims(self, rng):
        a = _tensor(rng, 3, 4)
        assert_gradients_close(lambda: a.sum(axis=0, keepdims=True).sum(), [a])

    def test_mean(self, rng):
        a = _tensor(rng, 6)
        assert_gradients_close(lambda: a.mean(), [a])

    def test_mean_axis(self, rng):
        a = _tensor(rng, 2, 3)
        assert_gradients_close(lambda: a.mean(axis=-1).sum(), [a])

    def test_max(self, rng):
        a = Tensor(np.array([[1.0, 5.0, 2.0], [4.0, 0.0, -1.0]]),
                   requires_grad=True)
        assert_gradients_close(lambda: a.max(axis=1).sum(), [a])


class TestShapeGradients:
    def test_reshape(self, rng):
        a = _tensor(rng, 2, 6)
        assert_gradients_close(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose(self, rng):
        a = _tensor(rng, 2, 3, 4)
        assert_gradients_close(
            lambda: (a.transpose((2, 0, 1)) ** 2).sum(), [a])

    def test_getitem_slice(self, rng):
        a = _tensor(rng, 5, 4)
        assert_gradients_close(lambda: (a[1:4] ** 2).sum(), [a])

    def test_getitem_fancy(self, rng):
        a = _tensor(rng, 5, 4)
        idx = np.array([0, 2, 2, 3])
        assert_gradients_close(lambda: (a[:, idx] ** 2).sum(), [a])

    def test_concatenate(self, rng):
        a, b = _tensor(rng, 2, 3), _tensor(rng, 2, 5)
        assert_gradients_close(
            lambda: (concatenate([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack(self, rng):
        a, b = _tensor(rng, 3), _tensor(rng, 3)
        assert_gradients_close(lambda: (stack([a, b]) ** 2).sum(), [a, b])


class TestNonlinearityGradients:
    def test_exp(self, rng):
        a = _tensor(rng, 4)
        assert_gradients_close(lambda: a.exp().sum(), [a])

    def test_log(self, rng):
        a = _tensor(rng, 4, positive=True)
        assert_gradients_close(lambda: a.log().sum(), [a])

    def test_relu(self, rng):
        a = Tensor(rng.normal(size=(8,)) + 0.01, requires_grad=True)
        assert_gradients_close(lambda: a.relu().sum(), [a])

    def test_sigmoid(self, rng):
        a = _tensor(rng, 6)
        assert_gradients_close(lambda: a.sigmoid().sum(), [a])

    def test_tanh(self, rng):
        a = _tensor(rng, 6)
        assert_gradients_close(lambda: a.tanh().sum(), [a])

    def test_softmax(self, rng):
        a = _tensor(rng, 3, 4)
        weights = Tensor(rng.normal(size=(3, 4)))
        assert_gradients_close(lambda: (a.softmax(axis=-1) * weights).sum(), [a])

    def test_clip(self, rng):
        a = Tensor(np.array([-2.0, -0.5, 0.3, 1.7]), requires_grad=True)
        assert_gradients_close(lambda: a.clip(-1.0, 1.0).sum(), [a])

    def test_sqrt(self, rng):
        a = _tensor(rng, 4, positive=True)
        assert_gradients_close(lambda: a.sqrt().sum(), [a])


class TestEmbeddingGradients:
    def test_lookup(self, rng):
        table = _tensor(rng, 6, 3)
        idx = np.array([[0, 2], [5, 2]])
        assert_gradients_close(
            lambda: (embedding_lookup(table, idx) ** 2).sum(), [table])

    def test_duplicate_indices_accumulate(self, rng):
        table = _tensor(rng, 4, 2)
        idx = np.array([1, 1, 1])
        out = embedding_lookup(table, idx).sum()
        out.backward()
        np.testing.assert_allclose(table.grad[1], np.full(2, 3.0))
        np.testing.assert_allclose(table.grad[0], np.zeros(2))


class TestWhereGradients:
    def test_where(self, rng):
        a, b = _tensor(rng, 5), _tensor(rng, 5)
        cond = np.array([True, False, True, True, False])
        assert_gradients_close(lambda: where(cond, a, b).sum(), [a, b])


class TestGraphMechanics:
    def test_gradient_accumulates_over_reuse(self, rng):
        a = _tensor(rng, 3)
        out = (a * a).sum() + a.sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + 1.0)

    def test_backward_through_diamond(self, rng):
        a = _tensor(rng, 3)
        b = a * 2.0
        out = (b + b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.full(3, 4.0))

    def test_no_grad_blocks_graph(self, rng):
        from repro.nn import no_grad

        a = _tensor(rng, 3)
        with no_grad():
            out = (a * 2.0).sum()
        assert out.requires_grad is False
        assert out._backward is None

    def test_backward_shape_mismatch_raises(self, rng):
        a = _tensor(rng, 3)
        with pytest.raises(ValueError):
            a.backward(np.ones(4))

    def test_detach_cuts_graph(self, rng):
        a = _tensor(rng, 3)
        d = a.detach()
        assert d.requires_grad is False
        out = (d * 2.0).sum()
        assert out.requires_grad is False

    def test_nonscalar_backward_with_explicit_grad(self, rng):
        a = _tensor(rng, 3)
        b = a * 3.0
        b.backward(np.array([1.0, 0.0, 2.0]))
        np.testing.assert_allclose(a.grad, [3.0, 0.0, 6.0])
