"""Layer behaviour: Linear, Embedding, LayerNorm, Dropout, MLP, Sequential."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    ReLU,
    Sequential,
    Sigmoid,
    Tensor,
)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 7, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 7)

    def test_matches_manual_affine(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(out.numpy(), expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_xavier_bound(self, rng):
        layer = Linear(100, 100, rng=rng)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= bound


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 5, rng=rng)
        out = emb(np.array([[0, 3], [9, 1]]))
        assert out.shape == (2, 2, 5)

    def test_rows_match_table(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([2, 7]))
        np.testing.assert_allclose(out.numpy()[0], emb.weight.data[2])
        np.testing.assert_allclose(out.numpy()[1], emb.weight.data[7])

    def test_out_of_range_raises(self, rng):
        emb = Embedding(5, 2, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_padding_idx_zeroed(self, rng):
        emb = Embedding(5, 3, rng=rng, padding_idx=0)
        np.testing.assert_allclose(emb.weight.data[0], np.zeros(3))

    def test_gradient_reaches_table(self, rng):
        emb = Embedding(6, 2, rng=rng)
        out = emb(np.array([1, 1, 4])).sum()
        out.backward()
        assert emb.weight.grad is not None
        np.testing.assert_allclose(emb.weight.grad[1], np.full(2, 2.0))


class TestLayerNorm:
    def test_normalizes_last_dim(self, rng):
        ln = LayerNorm(8)
        x = Tensor(rng.normal(3.0, 2.0, size=(10, 8)))
        out = ln(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gamma_beta_applied(self, rng):
        ln = LayerNorm(4)
        ln.gamma.data = np.full(4, 2.0)
        ln.beta.data = np.full(4, 1.0)
        x = Tensor(rng.normal(size=(3, 4)))
        out = ln(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_gradcheck(self, rng):
        from .gradcheck import assert_gradients_close

        ln = LayerNorm(5)
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        assert_gradients_close(lambda: (ln(x) ** 2).sum(),
                               [x, ln.gamma, ln.beta], rtol=1e-3)


class TestDropout:
    def test_identity_in_eval(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = Tensor(rng.normal(size=(4, 4)))
        np.testing.assert_allclose(drop(x).numpy(), x.numpy())

    def test_zero_p_is_identity(self, rng):
        drop = Dropout(0.0, rng=rng)
        x = Tensor(rng.normal(size=(4, 4)))
        np.testing.assert_allclose(drop(x).numpy(), x.numpy())

    def test_scales_kept_values(self, rng):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = drop(x).numpy()
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        # Empirically about half survive.
        assert 0.4 < (out != 0).mean() < 0.6

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestSequentialAndMLP:
    def test_sequential_applies_in_order(self, rng):
        seq = Sequential(Linear(3, 3, rng=rng), ReLU())
        x = Tensor(rng.normal(size=(2, 3)))
        out = seq(x).numpy()
        assert (out >= 0).all()
        assert len(seq) == 2

    def test_mlp_output_dim(self, rng):
        mlp = MLP(6, (16, 8), output_dim=1, rng=rng)
        out = mlp(Tensor(rng.normal(size=(4, 6))))
        assert out.shape == (4, 1)

    def test_mlp_no_hidden_layers(self, rng):
        mlp = MLP(6, (), output_dim=2, rng=rng)
        out = mlp(Tensor(rng.normal(size=(3, 6))))
        assert out.shape == (3, 2)

    def test_mlp_layer_norm_toggle(self, rng):
        with_ln = MLP(4, (8,), layer_norm=True, rng=rng)
        without_ln = MLP(4, (8,), layer_norm=False, rng=rng)
        assert len(with_ln.parameters()) == len(without_ln.parameters()) + 2

    def test_mlp_trains_xor_like_function(self, rng):
        # Sanity: the MLP can fit a small nonlinear function.
        from repro.nn import Adam, binary_cross_entropy_with_logits

        x = rng.normal(size=(256, 2))
        y = ((x[:, 0] * x[:, 1]) > 0).astype(float)
        mlp = MLP(2, (16, 16), rng=rng)
        opt = Adam(mlp.parameters(), lr=1e-2)
        for _ in range(150):
            opt.zero_grad()
            loss = binary_cross_entropy_with_logits(
                mlp(Tensor(x)).reshape(256), y)
            loss.backward()
            opt.step()
        probs = mlp(Tensor(x)).sigmoid().numpy().ravel()
        accuracy = ((probs > 0.5) == y).mean()
        assert accuracy > 0.9

    def test_sigmoid_module(self, rng):
        x = Tensor(np.array([0.0]))
        np.testing.assert_allclose(Sigmoid()(x).numpy(), [0.5])
