"""Module tree mechanics: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro.nn import Linear, MLP, Module, Parameter, Sequential, Tensor


class _Composite(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.inner = Linear(2, 2)

    def forward(self, x):
        return self.inner(x @ self.weight)


class TestRegistration:
    def test_parameters_collected_recursively(self):
        model = _Composite()
        names = [n for n, _ in model.named_parameters()]
        assert "weight" in names
        assert "inner.weight" in names
        assert "inner.bias" in names

    def test_num_parameters(self):
        model = _Composite()
        assert model.num_parameters() == 4 + 4 + 2

    def test_modules_iteration(self):
        model = _Composite()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds[0] == "_Composite"
        assert "Linear" in kinds

    def test_register_module_for_lists(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng), Linear(2, 2, rng=rng))
        assert len(seq.parameters()) == 4


class TestModes:
    def test_train_eval_propagate(self):
        model = _Composite()
        model.eval()
        assert model.training is False
        assert model.inner.training is False
        model.train()
        assert model.inner.training is True


class TestGradManagement:
    def test_zero_grad_clears_all(self):
        model = _Composite()
        out = model(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        a = MLP(3, (4,), rng=rng)
        b = MLP(3, (4,), rng=np.random.default_rng(99))
        state = a.state_dict()
        b.load_state_dict(state)
        x = Tensor(rng.normal(size=(2, 3)))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())

    def test_state_dict_copies(self, rng):
        model = Linear(2, 2, rng=rng)
        state = model.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(model.weight.data, 0.0)

    def test_missing_key_raises(self, rng):
        model = Linear(2, 2, rng=rng)
        state = model.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self, rng):
        model = Linear(2, 2, rng=rng)
        state = model.state_dict()
        state["phantom"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        model = Linear(2, 2, rng=rng)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestForwardContract:
    def test_base_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
