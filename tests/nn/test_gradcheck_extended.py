"""Finite-difference gradchecks for previously uncovered cases.

Covers the corners the sparse gradient path makes interesting:
duplicate / ``padding_idx`` embedding indices (coalescing must sum, not
overwrite), ``index_select`` backward on both the sparse (axis 0, leaf)
and dense (inner axis) routes, and LayerNorm driven at inputs whose
variance is comparable to ``eps``, where the stabiliser term actually
participates in the gradient.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SparseGrad, Tensor, embedding_lookup, index_select
from repro.nn.layers import Embedding, LayerNorm

from .gradcheck import assert_gradients_close


class TestEmbeddingLookupGradients:
    def test_duplicate_indices_coalesce(self, rng):
        table = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        idx = np.array([2, 2, 5, 2, 0, 0])
        assert_gradients_close(
            lambda: (embedding_lookup(table, idx) ** 2).sum(), [table])

    def test_duplicate_indices_dense_escape_hatch(self, rng):
        table = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        idx = np.array([1, 1, 4, 1])
        assert_gradients_close(
            lambda: (embedding_lookup(table, idx, dense_grad=True) ** 2).sum(),
            [table])

    def test_padding_idx_rows_get_correct_gradient(self, rng):
        emb = Embedding(5, 3, rng=rng, padding_idx=0)
        idx = np.array([[0, 2], [0, 0], [3, 2]])
        assert_gradients_close(
            lambda: (emb(idx) ** 2).sum() + emb(idx).sum(), [emb.weight])

    def test_multi_dim_indices(self, rng):
        table = Tensor(rng.normal(size=(7, 2)), requires_grad=True)
        idx = np.array([[1, 6, 1], [0, 6, 3]])
        assert_gradients_close(
            lambda: (embedding_lookup(table, idx) ** 3).sum(), [table])

    def test_sparse_grad_type_and_coalescing(self, rng):
        table = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        idx = np.array([2, 2, 5])
        embedding_lookup(table, idx).sum().backward()
        grad = table.grad
        assert isinstance(grad, SparseGrad)
        assert grad.indices.tolist() == [2, 5]
        np.testing.assert_array_equal(grad[2], np.full(4, 2.0))
        np.testing.assert_array_equal(grad[5], np.full(4, 1.0))


class TestIndexSelectGradients:
    def test_axis0_leaf_sparse(self, rng):
        x = Tensor(rng.normal(size=(8, 3)), requires_grad=True)
        idx = np.array([0, 5, 5, 2])
        assert_gradients_close(
            lambda: (index_select(x, idx) ** 2).sum(), [x])
        (index_select(x, idx) ** 2).sum().backward()
        assert isinstance(x.grad, SparseGrad)

    def test_axis0_dense_escape_hatch(self, rng):
        x = Tensor(rng.normal(size=(8, 3)), requires_grad=True)
        idx = np.array([0, 5, 5, 2])
        assert_gradients_close(
            lambda: (index_select(x, idx, dense_grad=True) ** 2).sum(), [x])
        (index_select(x, idx, dense_grad=True) ** 2).sum().backward()
        assert isinstance(x.grad, np.ndarray)

    def test_inner_axis_dense(self, rng):
        x = Tensor(rng.normal(size=(4, 6, 2)), requires_grad=True)
        idx = np.array([5, 0, 0, 3])
        assert_gradients_close(
            lambda: (index_select(x, idx, axis=1) ** 2).sum(), [x])

    def test_negative_axis(self, rng):
        x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        idx = np.array([4, 4, 1])
        assert_gradients_close(
            lambda: (index_select(x, idx, axis=-1) ** 2).sum(), [x])

    def test_non_leaf_input_gets_dense_grad(self, rng):
        x = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        idx = np.array([1, 4])
        assert_gradients_close(
            lambda: (index_select(x * 2.0, idx) ** 2).sum(), [x])

    def test_rejects_bad_indices(self, rng):
        x = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            index_select(x, np.array([[0, 1], [2, 3]]))
        with pytest.raises(TypeError):
            index_select(x, np.array([0.5, 1.5]))


class TestLayerNormEpsScaleGradients:
    """Inputs whose variance is comparable to ``eps``: the stabiliser is
    no longer negligible, so a backward that ignored it would pass the
    usual O(1)-scale gradchecks but fail here."""

    def test_variance_below_eps(self, rng):
        ln = LayerNorm(6, eps=1e-5)
        x = Tensor(rng.normal(size=(4, 6)) * 1e-3, requires_grad=True)
        assert_gradients_close(lambda: (ln(x) ** 2).sum(), [x, ln.gamma],
                               atol=1e-5, rtol=1e-3)

    def test_variance_near_eps(self, rng):
        ln = LayerNorm(5, eps=1e-4)
        x = Tensor(rng.normal(size=(3, 5)) * 1e-2, requires_grad=True)
        assert_gradients_close(lambda: (ln(x) ** 2).sum(), [x, ln.gamma],
                               atol=1e-5, rtol=1e-3)

    def test_constant_rows(self, rng):
        # Zero variance: output is x / sqrt(eps) * gamma + beta exactly.
        ln = LayerNorm(4, eps=1e-5)
        x = Tensor(np.full((2, 4), 1e-4), requires_grad=True)
        assert_gradients_close(lambda: (ln(x) ** 2).sum(),
                               [x, ln.gamma, ln.beta],
                               atol=1e-5, rtol=1e-3)
