"""CLI behaviour: argument parsing, dispatch, artefact writing."""

import numpy as np
import pytest

import repro.cli as cli_mod
from repro.cli import build_parser, main
from repro.experiments import ExperimentConfig
from repro.io import load_architecture, load_results


@pytest.fixture(autouse=True)
def micro_configs(monkeypatch):
    """Make CLI commands run on tiny data so the tests stay fast."""

    def micro(dataset, scale="quick"):
        return ExperimentConfig(dataset=dataset, n_samples=1500,
                                embed_dim=3, cross_embed_dim=2,
                                hidden_dims=(8,), epochs=1, search_epochs=1,
                                batch_size=256, seed=0)

    monkeypatch.setattr(cli_mod, "default_config", micro)
    import repro.experiments.tables as tables_mod
    import repro.experiments.figures as figures_mod

    monkeypatch.setattr(tables_mod, "default_config", micro)
    monkeypatch.setattr(figures_mod, "default_config", micro)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "1"])

    def test_model_name_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "BERT"])

    def test_scale_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--scale", "huge"])


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "pos ratio" in out
        assert "criteo" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "#cross value" in capsys.readouterr().out

    def test_table9_with_out(self, capsys, tmp_path):
        out_path = tmp_path / "t9.json"
        assert main(["table", "9", "--datasets", "criteo",
                     "--out", str(out_path)]) == 0
        payload = load_results(out_path)
        assert payload["table"] == "9"
        assert "with_retrain" in payload["rendered"]

    def test_figure5(self, capsys):
        assert main(["figure", "5", "--dataset", "criteo"]) == 0
        assert "mean MI" in capsys.readouterr().out

    def test_train_writes_metrics(self, capsys, tmp_path):
        out_path = tmp_path / "lr.json"
        assert main(["train", "LR", "--out", str(out_path)]) == 0
        payload = load_results(out_path)
        assert payload["model"] == "LR"
        assert 0.0 <= payload["auc"] <= 1.0

    def test_train_optinter_reports_counts(self, capsys):
        assert main(["train", "OptInter"]) == 0
        assert "selection counts" in capsys.readouterr().out

    def test_search_then_retrain_workflow(self, capsys, tmp_path):
        arch_path = tmp_path / "arch.json"
        ckpt_path = tmp_path / "model.npz"
        assert main(["search", "--arch-out", str(arch_path)]) == 0
        arch = load_architecture(arch_path)
        assert sum(arch.counts()) > 0

        assert main(["retrain", "--arch", str(arch_path),
                     "--checkpoint", str(ckpt_path)]) == 0
        assert ckpt_path.exists()
        out = capsys.readouterr().out
        assert "test AUC" in out

    def test_retrain_missing_architecture(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["retrain", "--arch", str(tmp_path / "absent.json")])


class TestObservability:
    def test_search_trace_reconstructs_selection(self, capsys, tmp_path):
        """Acceptance: search_alpha events in the trace decode to the same
        per-pair method selection the CLI reports."""
        from repro.io import load_architecture as load_arch
        from repro.obs import read_trace

        trace = tmp_path / "trace.jsonl"
        arch_path = tmp_path / "arch.json"
        assert main(["search", "--trace", str(trace),
                     "--arch-out", str(arch_path)]) == 0
        assert "trace written" in capsys.readouterr().out
        snapshots = read_trace(trace, "search_alpha")
        assert len(snapshots) >= 1
        arch = load_arch(arch_path)
        assert snapshots[-1].payload["methods"] == [m.value for m in arch]
        assert snapshots[-1].payload["counts"] == arch.counts()

    def test_train_trace_has_epoch_events(self, capsys, tmp_path):
        from repro.obs import read_trace
        from repro.training import History

        trace = tmp_path / "trace.jsonl"
        assert main(["train", "LR", "--trace", str(trace)]) == 0
        epochs = read_trace(trace, "epoch_end")
        assert len(epochs) >= 1
        # The trace doubles as a loadable History.
        history = History.from_jsonl(trace.read_text())
        assert len(history) == len(epochs)

    def test_retrain_trace(self, capsys, tmp_path):
        trace = tmp_path / "retrain.jsonl"
        arch_path = tmp_path / "arch.json"
        assert main(["search", "--arch-out", str(arch_path)]) == 0
        assert main(["retrain", "--arch", str(arch_path),
                     "--trace", str(trace)]) == 0
        from repro.obs import read_trace

        assert len(read_trace(trace, "epoch_end")) >= 1

    def test_profile_prints_op_table(self, capsys):
        assert main(["profile", "--samples", "1200", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "fwd self (s)" in out      # per-op table header
        assert "matmul" in out
        assert "embedding_lookup" in out
        assert "wall clock" in out
        assert "module" in out            # per-module table

    def test_profile_writes_bench_json(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_obs.json"
        assert main(["profile", "--samples", "1200", "--epochs", "1",
                     "--out", str(out_path)]) == 0
        payload = load_results(out_path)
        assert payload["command"] == "profile"
        assert payload["wall_s"] > 0
        assert payload["ops"]["matmul"]["calls"] > 0
        assert payload["modules"]["OptInterModel"]["calls"] > 0

    def test_profile_leaves_no_hooks_behind(self, capsys):
        from repro.nn.tensor import Tensor

        assert main(["profile", "--samples", "1200", "--epochs", "1"]) == 0
        assert not hasattr(Tensor.__mul__, "_obs_original")


class TestObsCommands:
    @pytest.fixture
    def train_trace(self, capsys, tmp_path):
        """A real training trace with span events, shared per test."""
        trace = tmp_path / "train.jsonl"
        assert main(["train", "LR", "--trace", str(trace)]) == 0
        capsys.readouterr()
        return trace

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_summarize_prints_percentile_table(self, capsys, train_trace):
        assert main(["obs", "summarize", str(train_trace)]) == 0
        out = capsys.readouterr().out
        assert "p50 ms" in out and "p99 ms" in out
        assert "train.run" in out
        assert "train.epoch" in out

    def test_summarize_without_spans(self, capsys, tmp_path):
        trace = tmp_path / "empty.jsonl"
        trace.write_text('{"type": "eval", "payload": {"auc": 0.5}}\n')
        assert main(["obs", "summarize", str(trace)]) == 0
        assert "no span events" in capsys.readouterr().out

    def test_tree_renders_nested_spans(self, capsys, train_trace):
        assert main(["obs", "tree", str(train_trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace ")
        assert "train.run" in out
        # Epochs are indented under the run span.
        epoch_lines = [l for l in out.splitlines() if "train.epoch" in l]
        assert epoch_lines and all(l.startswith("  ") for l in epoch_lines)

    def test_tree_lists_trace_ids(self, capsys, train_trace):
        assert main(["obs", "tree", str(train_trace), "--list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 1  # one fit() = one trace
        assert "roots: train.run" in lines[0]

    def test_drift_iid_replay_is_stable(self, capsys):
        assert main(["obs", "drift", "--samples", "3000",
                     "--window", "200"]) == 0
        out = capsys.readouterr().out
        assert "verdict: stable" in out

    def test_drift_shift_detected_and_written(self, capsys, tmp_path):
        out_path = tmp_path / "drift.json"
        assert main(["obs", "drift", "--samples", "3000", "--window", "200",
                     "--shift", "--out", str(out_path)]) == 0
        assert "verdict: DRIFT DETECTED" in capsys.readouterr().out
        payload = load_results(out_path)
        assert payload["drifted"] is True
        assert payload["shifted_fields"]
        assert payload["reports"][0]["field_psi"]


class TestOperatorErrorExitCodes:
    """Bad paths exit 2 with a one-line actionable message, no traceback."""

    def test_checkpoint_dir_that_is_a_file(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.raises(SystemExit) as info:
            main(["train", "LR", "--checkpoint-dir", str(blocker)])
        assert info.value.code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one line, not a traceback
        assert "not a directory" in err

    def test_resume_with_missing_checkpoint_dir(self, tmp_path, capsys):
        missing = tmp_path / "never_created"
        with pytest.raises(SystemExit) as info:
            main(["search", "--checkpoint-dir", str(missing), "--resume"])
        assert info.value.code == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "without --resume" in err  # tells the operator what to do

    def test_resume_guard_applies_to_retrain(self, tmp_path):
        missing = tmp_path / "gone"
        with pytest.raises(SystemExit) as info:
            main(["retrain", "--arch", "whatever.json",
                  "--checkpoint-dir", str(missing), "--resume"])
        assert info.value.code == 2

    def test_resume_still_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            main(["train", "LR", "--resume"])

    def test_corrupt_weights_exit_code_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"\x00" * 32)
        code = main(["serve", "--model", "LR", "--samples", "1500",
                     "--weights", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert "unreadable checkpoint" in err
        assert str(bad) in err


class TestServingParser:
    def test_serve_mode_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--mode", "carrier-pigeon"])

    def test_serve_model_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--model", "BERT"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.mode == "stdio"
        assert args.model == "LR"
        assert args.breaker_threshold == 5

    def test_predict_accepts_io_paths(self):
        args = build_parser().parse_args(
            ["predict", "--input", "in.jsonl", "--out", "out.jsonl"])
        assert args.input == "in.jsonl"
        assert args.out == "out.jsonl"


class TestIngestCLI:
    CSV = ("label,I1,C1,C2\n"
           "1,0.5,a,x\n0,1.5,b,y\n1,2.5,a,x\n0,3.5,c,y\n"
           "bad_label,4.5,a,x\n"
           "0,5.5,b,z\n1,6.5,a,y\n")

    def test_parser_on_error_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["ingest", "f.csv", "--categorical", "C1",
                 "--on-error", "explode"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["ingest", "f.csv", "--categorical", "C1", "C2"])
        assert args.on_error == "raise"
        assert args.chunk_rows == 4096
        assert args.resume is False

    def test_missing_file_is_operator_error(self, tmp_path, capsys):
        code = main(["ingest", str(tmp_path / "nope.csv"),
                     "--categorical", "C1"])
        assert code == 2

    def test_bad_row_under_raise_is_data_error(self, tmp_path, capsys):
        path = tmp_path / "log.csv"
        path.write_text(self.CSV)
        code = main(["ingest", str(path), "--categorical", "C1", "C2",
                     "--continuous", "I1"])
        assert code == 1
        assert "label" in capsys.readouterr().err

    def test_quarantine_run_reports_json(self, tmp_path, capsys):
        import json
        path = tmp_path / "log.csv"
        path.write_text(self.CSV)
        qpath = tmp_path / "q.jsonl"
        out = tmp_path / "encoded.npz"
        code = main(["ingest", str(path), "--categorical", "C1", "C2",
                     "--continuous", "I1", "--on-error", "quarantine",
                     "--quarantine", str(qpath), "--out", str(out)])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "ok"
        assert report["rows"] == {"read": 7, "ok": 6,
                                  "skipped": 0, "quarantined": 1}
        assert report["dataset"]["rows"] == 6
        records = [json.loads(l) for l in qpath.read_text().splitlines()]
        assert [r["code"] for r in records] == ["label"]
        archive = np.load(out)
        assert archive["x"].shape == (6, 3)

    def test_crash_then_resume_exit_codes(self, tmp_path, capsys):
        import json
        path = tmp_path / "log.csv"
        path.write_text("label,I1,C1\n" + "".join(
            f"{i % 2},{i}.5,c{i % 4}\n" for i in range(40)))
        workdir = tmp_path / "wd"
        base = ["ingest", str(path), "--categorical", "C1",
                "--continuous", "I1", "--chunk-rows", "8",
                "--workdir", str(workdir)]
        code = main(base + ["--crash-at-chunk", "2"])
        assert code == 3
        crashed = json.loads(capsys.readouterr().out)
        assert crashed["status"] == "crashed"
        code = main(base + ["--resume"])
        assert code == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["status"] == "ok"
        assert resumed["resumed"] is True
        assert resumed["chunks"]["resumed"] == 2
        assert resumed["dataset"]["rows"] == 40

    def test_resume_without_workdir_is_operator_error(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(self.CSV)
        assert main(["ingest", str(path), "--categorical", "C1",
                     "--resume"]) == 2
