"""run_zoo failure isolation: one broken model must not sink the table."""

import math

import pytest

from repro.experiments import ExperimentConfig, prepare_dataset
from repro.experiments import runner as runner_mod
from repro.experiments.runner import ResultRow, run_zoo
from repro.experiments.tables import Table5Result


@pytest.fixture(scope="module")
def tiny_setup():
    config = ExperimentConfig(dataset="criteo", n_samples=1500,
                              embed_dim=3, cross_embed_dim=2,
                              hidden_dims=(8,), epochs=1, search_epochs=1,
                              batch_size=256, seed=0)
    return prepare_dataset(config), config


class TestResultRow:
    def test_default_status_is_ok(self):
        row = ResultRow(model="LR", auc=0.7, log_loss=0.5, params=10)
        assert row.ok and row.status == "ok" and row.error is None

    def test_failed_constructor(self):
        row = ResultRow.failed("FNN", RuntimeError("NaN loss"))
        assert not row.ok
        assert row.status == "failed"
        assert row.error == "RuntimeError: NaN loss"
        assert math.isnan(row.auc) and math.isnan(row.log_loss)

    def test_failed_row_formats_without_crashing(self):
        text = ResultRow.failed("FNN", RuntimeError("boom")).formatted()
        assert "FAILED" in text and "boom" in text


class TestRunZooIsolation:
    def test_one_failure_does_not_sink_the_rest(self, tiny_setup,
                                                monkeypatch):
        bundle, config = tiny_setup
        real_run_model = runner_mod.run_model

        def sabotaged(name, bundle, config, **kwargs):
            if name == "FNN":
                raise RuntimeError("training diverged")
            return real_run_model(name, bundle, config, **kwargs)

        monkeypatch.setattr(runner_mod, "run_model", sabotaged)
        rows = run_zoo(bundle, config, models=["LR", "FNN", "FM"])
        assert [r.model for r in rows] == ["LR", "FNN", "FM"]
        assert [r.ok for r in rows] == [True, False, True]
        failed = rows[1]
        assert failed.status == "failed"
        assert "training diverged" in failed.error

    def test_user_abort_propagates(self, tiny_setup, monkeypatch):
        bundle, config = tiny_setup

        def aborted(name, bundle, config, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner_mod, "run_model", aborted)
        with pytest.raises(KeyboardInterrupt):
            run_zoo(bundle, config, models=["LR"])


class TestTable5WithFailures:
    def _rows(self):
        return {"criteo": [
            ResultRow(model="LR", auc=0.70, log_loss=0.5, params=10),
            ResultRow.failed("FNN", RuntimeError("boom")),
            ResultRow(model="FM", auc=0.75, log_loss=0.45, params=20),
        ]}

    def test_best_skips_failed_rows(self):
        table = Table5Result(rows=self._rows())
        assert table.best("criteo").model == "FM"

    def test_best_raises_when_everything_failed(self):
        table = Table5Result(rows={"criteo": [
            ResultRow.failed("LR", RuntimeError("a")),
            ResultRow.failed("FM", RuntimeError("b")),
        ]})
        with pytest.raises(ValueError, match="every model failed"):
            table.best("criteo")

    def test_render_marks_failed_rows(self):
        text = Table5Result(rows=self._rows()).render()
        assert "FAILED" in text
        assert "nan" not in text.lower()
