"""Registry constants: group membership mirrors the paper's Table V rows."""

from repro.experiments import (
    ALL_MODELS,
    EXTENDED_MODELS,
    FACTORIZED_MODELS,
    HYBRID_MODELS,
    MEMORIZED_MODELS,
    NAIVE_MODELS,
    ResultRow,
)


class TestGroups:
    def test_groups_are_disjoint(self):
        groups = [set(NAIVE_MODELS), set(FACTORIZED_MODELS),
                  set(MEMORIZED_MODELS), set(HYBRID_MODELS)]
        for i, a in enumerate(groups):
            for b in groups[i + 1:]:
                assert a.isdisjoint(b)

    def test_all_models_is_union_of_groups(self):
        union = (set(NAIVE_MODELS) | set(FACTORIZED_MODELS)
                 | set(MEMORIZED_MODELS) | set(HYBRID_MODELS))
        assert set(ALL_MODELS) == union

    def test_paper_rows_present(self):
        for name in ("LR", "FNN", "FM", "IPNN", "DeepFM", "PIN", "Poly2",
                     "AutoFIS", "OptInter", "OptInter-M", "OptInter-F"):
            assert name in ALL_MODELS, name

    def test_extended_models_not_in_default_table5(self):
        assert set(EXTENDED_MODELS).isdisjoint(set(ALL_MODELS))

    def test_hybrid_group_matches_paper(self):
        assert set(HYBRID_MODELS) == {"AutoFIS", "OptInter"}


class TestResultRow:
    def test_formatted_contains_metrics(self):
        row = ResultRow(model="X", auc=0.81234, log_loss=0.4, params=1_500_000)
        text = row.formatted()
        assert "0.8123" in text
        assert "1.5M" in text

    def test_extra_defaults_to_none(self):
        row = ResultRow(model="X", auc=0.5, log_loss=0.7, params=10)
        assert row.extra is None
