"""Report generator: section selection, rendering, CLI integration."""

import pytest

import repro.experiments.report as report_mod
import repro.experiments.tables as tables_mod
import repro.experiments.figures as figures_mod
from repro.experiments import EXPERIMENT_IDS, ExperimentConfig, generate_report


@pytest.fixture(autouse=True)
def micro_configs(monkeypatch):
    def micro(dataset, scale="quick"):
        return ExperimentConfig(dataset=dataset, n_samples=1200,
                                embed_dim=3, cross_embed_dim=2,
                                hidden_dims=(8,), epochs=1, search_epochs=1,
                                batch_size=256, seed=0)

    monkeypatch.setattr(tables_mod, "default_config", micro)
    monkeypatch.setattr(figures_mod, "default_config", micro)


class TestGenerateReport:
    def test_single_experiment(self):
        report = generate_report(experiments=["table2"])
        assert "# OptInter reproduction report" in report
        assert "Table II" in report
        assert "pos ratio" in report

    def test_subset_skips_others(self):
        report = generate_report(experiments=["table2"])
        assert "Table V" not in report
        assert "Figure 4" not in report

    def test_multiple_experiments_ordered(self):
        report = generate_report(experiments=["figure5", "table2"],
                                 datasets=("criteo",))
        # Sections come in canonical order regardless of request order.
        assert report.index("Table II") < report.index("Figure 5")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            generate_report(experiments=["table1"])

    def test_all_ids_registered(self):
        assert set(EXPERIMENT_IDS) == {
            "table2", "table3", "table4", "table5", "table6", "table7",
            "table8", "table9", "figure4", "figure5", "figure6",
        }


class TestReportCLI:
    def test_report_to_stdout(self, capsys, monkeypatch):
        import repro.cli as cli_mod
        from repro.cli import main

        def micro(dataset, scale="quick"):
            return ExperimentConfig(dataset=dataset, n_samples=1200,
                                    embed_dim=3, cross_embed_dim=2,
                                    hidden_dims=(8,), epochs=1,
                                    search_epochs=1, batch_size=256, seed=0)

        monkeypatch.setattr(cli_mod, "default_config", micro)
        assert main(["report", "--experiments", "table2"]) == 0
        out = capsys.readouterr().out
        assert "reproduction report" in out

    def test_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "report.md"
        assert main(["report", "--experiments", "table2",
                     "--out", str(out_path)]) == 0
        assert "Table II" in out_path.read_text()
