"""Grid search: expansion, ranking, single-training-per-trial."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    expand_grid,
    grid_search,
    prepare_dataset,
    train_registry_model,
)


@pytest.fixture(scope="module")
def micro_setup():
    config = ExperimentConfig(dataset="criteo", n_samples=1500,
                              embed_dim=3, cross_embed_dim=2,
                              hidden_dims=(8,), epochs=1, search_epochs=1,
                              batch_size=256, seed=0)
    return config, prepare_dataset(config)


class TestExpandGrid:
    def test_cartesian_product(self):
        combos = expand_grid({"lr": [0.1, 0.2], "embed_dim": [2, 4]})
        assert len(combos) == 4
        assert {"lr": 0.1, "embed_dim": 2} in combos

    def test_single_param(self):
        combos = expand_grid({"lr": [0.1]})
        assert combos == [{"lr": 0.1}]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            expand_grid({})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            expand_grid({"learning_rate_typo": [0.1]})

    def test_stable_ordering(self):
        a = expand_grid({"lr": [1, 2], "seed": [3, 4]})
        b = expand_grid({"seed": [3, 4], "lr": [1, 2]})
        assert a == b


class TestTrainRegistryModel:
    @pytest.mark.parametrize("name", ["LR", "OptInter-M", "OptInter"])
    def test_returns_trained_model(self, micro_setup, name):
        config, bundle = micro_setup
        model = train_registry_model(name, bundle, config)
        assert model.num_parameters() > 0
        probs = model.predict_proba(bundle.test.full_batch())
        assert probs.shape == (len(bundle.test),)


class TestGridSearch:
    def test_trials_sorted_by_val_auc(self, micro_setup):
        config, bundle = micro_setup
        result = grid_search("LR", bundle, config,
                             {"lr": [1e-4, 5e-2], "seed": [0]})
        assert len(result.trials) == 2
        aucs = [t.val_auc for t in result.trials]
        assert aucs == sorted(aucs, reverse=True)
        assert result.best.val_auc == aucs[0]

    def test_params_recorded_per_trial(self, micro_setup):
        config, bundle = micro_setup
        result = grid_search("LR", bundle, config, {"lr": [1e-2, 1e-3]})
        lrs = {t.params["lr"] for t in result.trials}
        assert lrs == {1e-2, 1e-3}

    def test_render(self, micro_setup):
        config, bundle = micro_setup
        result = grid_search("LR", bundle, config, {"lr": [1e-2]})
        text = result.render()
        assert "grid search for LR" in text
        assert "val AUC" in text

    def test_requires_validation_split(self, micro_setup):
        from repro.experiments import DatasetBundle

        config, bundle = micro_setup
        empty_val = DatasetBundle(
            name=bundle.name, full=bundle.full, train=bundle.train,
            val=bundle.val.subset(np.array([], dtype=int)),
            test=bundle.test, truth=bundle.truth)
        with pytest.raises(ValueError):
            grid_search("LR", empty_val, config, {"lr": [1e-2]})

    def test_larger_embedding_changes_param_count(self, micro_setup):
        config, bundle = micro_setup
        result = grid_search("FNN", bundle, config, {"embed_dim": [2, 6]})
        by_dim = {t.params["embed_dim"]: t.n_parameters
                  for t in result.trials}
        assert by_dim[6] > by_dim[2]
