"""Experiment configuration presets."""

import pytest

from repro.experiments import all_dataset_names, default_config


class TestDefaultConfig:
    @pytest.mark.parametrize("dataset", ["criteo", "avazu", "ipinyou"])
    @pytest.mark.parametrize("scale", ["quick", "paper"])
    def test_presets_exist(self, dataset, scale):
        config = default_config(dataset, scale)
        assert config.dataset == dataset
        assert config.n_samples > 0

    def test_quick_smaller_than_paper(self):
        quick = default_config("criteo", "quick")
        paper = default_config("criteo", "paper")
        assert quick.n_samples < paper.n_samples
        assert quick.epochs <= paper.epochs

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            default_config("movielens")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            default_config("criteo", "huge")

    def test_all_dataset_names(self):
        assert set(all_dataset_names()) == {"criteo", "avazu", "ipinyou"}

    def test_search_config_mirrors_experiment(self):
        config = default_config("avazu", "quick")
        sc = config.search_config()
        assert sc.embed_dim == config.embed_dim
        assert sc.cross_embed_dim == config.cross_embed_dim
        assert sc.epochs == config.search_epochs

    def test_search_config_overrides(self):
        config = default_config("criteo", "quick")
        sc = config.search_config(epochs=9, lr=123.0)
        assert sc.epochs == 9
        assert sc.lr == 123.0

    def test_retrain_config_overrides(self):
        config = default_config("criteo", "quick")
        rc = config.retrain_config(cross_embed_dim=13)
        assert rc.cross_embed_dim == 13
        assert rc.embed_dim == config.embed_dim

    def test_make_dataset_config_dispatch(self):
        config = default_config("ipinyou", "quick")
        ds_config = config.make_dataset_config()
        assert ds_config.name == "ipinyou_like"
        assert ds_config.n_samples == config.n_samples
