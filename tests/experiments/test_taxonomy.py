"""Tables III/IV: taxonomy registry and live hyper-parameter rendering."""

import pytest

from repro.experiments import (
    ALL_MODELS,
    EXTENDED_MODELS,
    TAXONOMY,
    ExperimentConfig,
    prepare_dataset,
    run_table3,
    run_table4,
    verify_taxonomy,
)


class TestTable3:
    def test_every_registry_model_classified(self):
        classified = {row.model for row in TAXONOMY}
        trainable = set(ALL_MODELS + EXTENDED_MODELS)
        # OptInter-M / OptInter-F are OptInter instances, not separate rows.
        trainable -= {"OptInter-M", "OptInter-F"}
        assert trainable <= classified

    def test_categories_match_paper(self):
        by_category = run_table3().by_category()
        assert set(by_category) == {"naive", "memorized", "factorized",
                                    "hybrid"}
        assert "OptInter" in by_category["hybrid"]
        assert "AutoFIS" in by_category["hybrid"]
        assert "LR" in by_category["naive"]
        assert "Poly2" in by_category["memorized"]

    def test_only_optinter_spans_all_methods(self):
        full = [row.model for row in TAXONOMY if row.methods == "{n,m,f}"]
        assert full == ["OptInter"]

    def test_render(self):
        text = run_table3().render()
        assert "OptInter" in text and "classifier" in text

    def test_structural_claims_hold_on_live_models(self):
        config = ExperimentConfig(dataset="criteo", n_samples=1200,
                                  embed_dim=2, cross_embed_dim=2,
                                  hidden_dims=(8,), epochs=1,
                                  search_epochs=1, batch_size=256, seed=0)
        bundle = prepare_dataset(config)
        checks = verify_taxonomy(bundle, config)
        assert all(checks.values()), checks


class TestTable4:
    def test_covers_all_datasets(self):
        result = run_table4()
        assert set(result.settings) == {"criteo", "avazu", "ipinyou"}

    def test_includes_architecture_lr(self):
        result = run_table4()
        assert "lr_arch" in result.settings["criteo"]

    def test_render_aligns_datasets(self):
        text = run_table4().render()
        assert "criteo" in text and "embed_dim" in text

    def test_scales_differ(self):
        quick = run_table4(scale="quick")
        paper = run_table4(scale="paper")
        assert (quick.settings["criteo"]["n_samples"]
                < paper.settings["criteo"]["n_samples"])
