"""Paper-protocol significance runs at the harness level."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    prepare_dataset,
    run_significance,
)


@pytest.fixture(scope="module")
def micro_setup():
    config = ExperimentConfig(dataset="criteo", n_samples=1500,
                              embed_dim=3, cross_embed_dim=2,
                              hidden_dims=(8,), epochs=2, search_epochs=1,
                              batch_size=256, seed=0)
    return config, prepare_dataset(config)


class TestRunSignificance:
    def test_memorizer_vs_lr(self, micro_setup):
        config, bundle = micro_setup
        result = run_significance("OptInter-M", "LR", dataset="criteo",
                                  seeds=(0, 1, 2), config=config,
                                  bundle=bundle)
        assert len(result.comparison.challenger.runs) == 3
        assert len(result.comparison.baseline.runs) == 3
        assert 0.0 <= result.comparison.p_value_auc <= 1.0

    def test_render_contains_both_models(self, micro_setup):
        config, bundle = micro_setup
        result = run_significance("Poly2", "LR", dataset="criteo",
                                  seeds=(0, 1), config=config, bundle=bundle)
        text = result.render()
        assert "Poly2" in text and "LR" in text and "p =" in text

    def test_same_model_not_significant(self, micro_setup):
        """Identical model + identical seeds => identical runs => p = 1."""
        config, bundle = micro_setup
        result = run_significance("LR", "LR", dataset="criteo",
                                  seeds=(0, 1), config=config, bundle=bundle)
        assert result.comparison.p_value_auc == 1.0
        assert not result.comparison.significant

    def test_seeds_vary_training(self, micro_setup):
        config, bundle = micro_setup
        result = run_significance("FNN", "LR", dataset="criteo",
                                  seeds=(0, 1, 2), config=config,
                                  bundle=bundle)
        aucs = result.comparison.challenger.aucs
        assert len(set(aucs.tolist())) > 1  # different seeds, different runs
