"""Smoke tests of the table/figure harness on very small settings.

The benchmark suite runs the real ``quick``-scale experiments; these tests
only verify the plumbing (structure, rendering, dispatch) at minimal cost.
"""

import dataclasses

import numpy as np
import pytest

import repro.experiments.tables as tables_mod
import repro.experiments.figures as figures_mod
from repro.experiments import (
    ExperimentConfig,
    embed_dim_for_params,
    render_rows,
    run_figure4,
    run_figure5,
    run_figure6,
    run_table2,
    run_table9,
)


@pytest.fixture(autouse=True)
def micro_configs(monkeypatch):
    """Shrink default_config so harness smoke tests stay fast."""

    def micro(dataset, scale="quick"):
        return ExperimentConfig(dataset=dataset, n_samples=1200,
                                embed_dim=3, cross_embed_dim=2,
                                hidden_dims=(8,), epochs=1, search_epochs=1,
                                batch_size=256, seed=0)

    monkeypatch.setattr(tables_mod, "default_config", micro)
    monkeypatch.setattr(figures_mod, "default_config", micro)


class TestRenderRows:
    def test_renders_alignment(self):
        text = render_rows(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_empty_rows(self):
        text = render_rows(["x"], [])
        assert "x" in text


class TestEmbedDimForParams:
    def test_monotone_in_target(self):
        cards = [50, 50, 50]
        small = embed_dim_for_params(1_000, cards, (16,))
        large = embed_dim_for_params(100_000, cards, (16,))
        assert small <= large

    def test_minimum_is_one(self):
        assert embed_dim_for_params(1, [10], (4,)) == 1


class TestTableHarness:
    def test_table2_structure(self):
        result = run_table2(datasets=("ipinyou",))
        assert "ipinyou" in result.stats
        assert "pos ratio" in result.render()

    def test_table9_structure(self):
        result = run_table9(datasets=("criteo",))
        variants = result.rows["criteo"]
        assert set(variants) == {"with_retrain", "without_retrain"}
        assert "AUC" in result.render()


class TestFigureHarness:
    def test_figure4_series(self):
        result = run_figure4("criteo", cross_dims=(2,))
        assert {p.model for p in result.points} == {"OptInter", "OptInter-M"}
        assert all(p.params > 0 for p in result.points)
        assert "trade-off" in result.render()

    def test_figure5_report(self):
        result = run_figure5("criteo")
        counts = result.report.counts
        assert sum(counts.values()) > 0
        assert "mean MI" in result.render()

    def test_figure6_maps(self):
        result = run_figure6("criteo")
        assert result.study.method_codes.shape[0] == result.study.mi_map.shape[0]
        assert "Spearman" in result.render()
