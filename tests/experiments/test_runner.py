"""Runner: model registry dispatch and result rows (tiny configs)."""

import dataclasses

import numpy as np
import pytest

from repro.core import Architecture
from repro.experiments import (
    ALL_MODELS,
    ExperimentConfig,
    prepare_dataset,
    run_fixed_architecture,
    run_model,
)


@pytest.fixture(scope="module")
def tiny_setup():
    """One very small bundle + config shared by every runner test."""
    config = ExperimentConfig(dataset="criteo", n_samples=1500,
                              embed_dim=3, cross_embed_dim=2,
                              hidden_dims=(8,), epochs=1, search_epochs=1,
                              batch_size=256, seed=0)
    return prepare_dataset(config), config


class TestPrepareDataset:
    def test_bundle_structure(self, tiny_setup):
        bundle, config = tiny_setup
        assert bundle.name == "criteo"
        total = len(bundle.train) + len(bundle.val) + len(bundle.test)
        assert total == len(bundle.full)
        assert bundle.truth is not None


class TestRunModel:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_every_registry_model_runs(self, tiny_setup, name):
        bundle, config = tiny_setup
        row = run_model(name, bundle, config)
        assert row.model == name
        assert 0.0 <= row.auc <= 1.0
        assert row.log_loss > 0.0
        assert row.params > 0

    def test_unknown_model_rejected(self, tiny_setup):
        bundle, config = tiny_setup
        with pytest.raises(KeyError):
            run_model("BERT", bundle, config)

    def test_optinter_row_carries_architecture(self, tiny_setup):
        bundle, config = tiny_setup
        row = run_model("OptInter", bundle, config)
        assert sum(row.extra["counts"]) == bundle.train.num_pairs

    def test_formatted_row(self, tiny_setup):
        bundle, config = tiny_setup
        row = run_model("LR", bundle, config)
        text = row.formatted()
        assert "LR" in text and "AUC" in text


class TestRunFixedArchitecture:
    def test_labels_and_counts(self, tiny_setup, rng):
        bundle, config = tiny_setup
        arch = Architecture.random(bundle.train.num_pairs, rng)
        row = run_fixed_architecture(arch, bundle, config, label="probe")
        assert row.model == "probe"
        assert row.extra["counts"] == arch.counts()

    def test_param_count_tracks_memorization(self, tiny_setup):
        bundle, config = tiny_setup
        P = bundle.train.num_pairs
        lean = run_fixed_architecture(Architecture.all_naive(P), bundle,
                                      config)
        heavy = run_fixed_architecture(Architecture.all_memorize(P), bundle,
                                       config)
        assert lean.params < heavy.params
