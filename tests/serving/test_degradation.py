"""Circuit breaker state machine and the degradation ladder."""

import math
import threading

import numpy as np
import pytest

from repro.data.dataset import Batch
from repro.obs.metrics import MetricsRegistry
from repro.serving import (
    CircuitBreaker,
    DegradationLadder,
    LEVEL_MAIN_EFFECTS,
    LEVEL_PRIOR,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown_s=10.0, clock=clock)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_opens_on_consecutive_failures(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.9)
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(0.2)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else stays degraded

    def test_successful_probe_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_with_fresh_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(9.0)  # cooldown restarted at the failed probe
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(2.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_timeout_s=0.0)


class TestHalfOpenConcurrency:
    """The single-probe token under racing threads.

    Two callers hitting ``allow()`` at the same instant in half-open
    must resolve to exactly one probe — a torn check-then-set here would
    let several requests stampede a barely-recovering model.
    """

    def _trip_and_cool(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_racing_threads_get_exactly_one_probe_token(self, breaker,
                                                        clock):
        self._trip_and_cool(breaker, clock)
        start = threading.Barrier(8)
        grants = []

        def contender():
            start.wait()
            if breaker.allow():
                grants.append(threading.get_ident())

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(grants) == 1

    def test_token_races_repeat_after_each_failed_probe(self, breaker,
                                                        clock):
        for _round in range(5):
            self._trip_and_cool(breaker, clock)
            start = threading.Barrier(4)
            grants = []

            def contender():
                start.wait()
                if breaker.allow():
                    grants.append(1)

            threads = [threading.Thread(target=contender) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(grants) == 1
            breaker.record_failure()   # probe fails → back to open

    def test_stuck_probe_is_reclaimed_after_timeout(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0,
                                 probe_timeout_s=2.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()        # probe granted... and never reports
        assert not breaker.allow()    # token held
        clock.advance(1.9)
        assert not breaker.allow()    # still inside the probe timeout
        clock.advance(0.2)
        assert breaker.allow()        # reclaimed: a new caller probes
        assert not breaker.allow()    # ...and holds the fresh token
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_without_timeout_a_silent_probe_pins_half_open(self, breaker,
                                                           clock):
        self._trip_and_cool(breaker, clock)
        assert breaker.allow()
        clock.advance(3600.0)         # the probe thread died silently
        assert not breaker.allow()    # historical default: trust the probe

    def test_late_probe_report_after_reclaim_is_harmless(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0,
                                 probe_timeout_s=2.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        clock.advance(2.5)
        assert breaker.allow()        # token reclaimed by a second probe
        breaker.record_failure()      # first probe finally reports failure
        assert breaker.state == CircuitBreaker.OPEN
        breaker.record_success()      # second probe lands
        assert breaker.state == CircuitBreaker.CLOSED


class TestDegradationLadder:
    def test_prior_must_be_a_probability(self):
        with pytest.raises(ValueError):
            DegradationLadder(0.0)
        with pytest.raises(ValueError):
            DegradationLadder(1.0)

    def test_lr_answers_from_main_effects(self, lr_model):
        ladder = DegradationLadder(0.3)
        batch = Batch(x=np.array([[1, 2, 3]]), x_cross=None, y=np.zeros(1))
        probability, level = ladder.fallback(lr_model, batch,
                                             reason="model_error")
        assert level == LEVEL_MAIN_EFFECTS
        logit = float(lr_model.main_effects_logit(batch)[0])
        assert probability == pytest.approx(1.0 / (1.0 + math.exp(-logit)))

    def test_no_model_answers_from_prior(self):
        ladder = DegradationLadder(0.3)
        probability, level = ladder.fallback(None, None, reason="unavailable")
        assert (probability, level) == (0.3, LEVEL_PRIOR)

    def test_model_without_main_effects_falls_to_prior(self):
        class NoHead:
            def main_effects_logit(self, batch):
                return None

        ladder = DegradationLadder(0.25)
        batch = Batch(x=np.array([[0, 0, 0]]), x_cross=None, y=np.zeros(1))
        probability, level = ladder.fallback(NoHead(), batch, reason="x")
        assert (probability, level) == (0.25, LEVEL_PRIOR)

    def test_main_effects_exception_falls_to_prior(self):
        class Broken:
            def main_effects_logit(self, batch):
                raise RuntimeError("boom")

        ladder = DegradationLadder(0.4)
        batch = Batch(x=np.array([[0, 0, 0]]), x_cross=None, y=np.zeros(1))
        probability, level = ladder.fallback(Broken(), batch, reason="x")
        assert (probability, level) == (0.4, LEVEL_PRIOR)

    def test_non_finite_main_effects_falls_to_prior(self):
        class NaNHead:
            def main_effects_logit(self, batch):
                return np.array([float("nan")])

        ladder = DegradationLadder(0.4)
        batch = Batch(x=np.array([[0, 0, 0]]), x_cross=None, y=np.zeros(1))
        _, level = ladder.fallback(NaNHead(), batch, reason="x")
        assert level == LEVEL_PRIOR

    def test_counts_and_events(self, lr_model, mem_sink):
        bus, sink = mem_sink
        metrics = MetricsRegistry()
        ladder = DegradationLadder(0.3, bus=bus, metrics=metrics)
        batch = Batch(x=np.array([[1, 1, 1]]), x_cross=None, y=np.zeros(1))
        ladder.fallback(lr_model, batch, reason="deadline", request_id="r9")
        assert metrics.counter("serve.degraded").value == 1
        assert metrics.counter("serve.degraded.main_effects").value == 1
        events = sink.of_type("degrade")
        assert len(events) == 1
        assert events[0].payload["reason"] == "deadline"
        assert events[0].payload["request_id"] == "r9"


class TestMainEffectsLogit:
    def test_deep_model_reports_unsupported(self, schema, rng):
        from repro.models import FNN

        model = FNN(schema.cardinalities, embed_dim=4, hidden_dims=(8,),
                    rng=rng)
        batch = Batch(x=np.array([[0, 0, 0]]), x_cross=None, y=np.zeros(1))
        assert model.main_effects_logit(batch) is None

    def test_lr_matches_forward(self, schema, lr_model):
        batch = Batch(x=np.array([[2, 3, 4], [1, 0, 5]]), x_cross=None,
                      y=np.zeros(2))
        logit = lr_model.main_effects_logit(batch)
        np.testing.assert_allclose(logit, lr_model(batch).numpy().ravel())

    def test_poly2_drops_cross_terms(self, schema, rng):
        from repro.models.shallow import Poly2

        model = Poly2(schema.cardinalities, [4] * schema.num_pairs, rng=rng)
        batch = Batch(x=np.array([[1, 2, 3]]), x_cross=None, y=np.zeros(1))
        logit = model.main_effects_logit(batch)
        assert logit is not None and np.all(np.isfinite(logit))

    def test_training_mode_is_restored(self, lr_model):
        batch = Batch(x=np.array([[0, 0, 0]]), x_cross=None, y=np.zeros(1))
        lr_model.train(True)
        lr_model.main_effects_logit(batch)
        assert lr_model.training
