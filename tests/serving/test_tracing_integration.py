"""End-to-end request tracing: one trace_id from queue to score.

These are the acceptance tests for the serving half of the tracing
tentpole: a request through :class:`PredictionService` must produce a
span tree where queue wait, validation and scoring (or degradation)
all share the request's ``trace_id``, reconstructable from the event
stream with the ``repro obs`` helpers.
"""

import json

import numpy as np
import pytest

from repro.obs import parse_prometheus_text, sequential_ids, span_tree
from repro.obs.monitor import DriftMonitor
from repro.obs.tracing import Tracer, spans_from_events
from repro.serving.faults import valid_requests
from repro.serving.server import handle_request_line


def make_tracer(bus):
    return Tracer(bus=bus, ids=sequential_ids())


@pytest.fixture
def request_features(schema):
    return next(iter(valid_requests(schema, count=1)))


class TestRequestSpans:
    def test_ok_request_spans_share_one_trace(self, make_service, mem_sink,
                                              request_features):
        bus, sink = mem_sink
        service = make_service(tracer=make_tracer(bus))
        response = service.predict(request_features, request_id="r1",
                                   queued_at=service.tracer.clock() - 0.25)
        assert response.status == "ok"
        spans = spans_from_events(sink.events)
        by_name = {s.name: s for s in spans}
        assert set(by_name) == {"serve.request", "serve.queue",
                                "serve.validate", "serve.score"}
        assert len({s.trace_id for s in spans}) == 1
        request_span = by_name["serve.request"]
        for child in ("serve.queue", "serve.validate", "serve.score"):
            assert by_name[child].parent_id == request_span.span_id
        assert by_name["serve.queue"].duration_s == pytest.approx(0.25,
                                                                  abs=0.1)
        assert response.trace_id == request_span.trace_id

    def test_span_tree_reconstructs_request(self, make_service, mem_sink,
                                            request_features):
        bus, sink = mem_sink
        service = make_service(tracer=make_tracer(bus))
        service.predict(request_features, queued_at=service.tracer.clock())
        (root,) = span_tree(spans_from_events(sink.events))
        assert root["span"].name == "serve.request"
        assert {n["span"].name for n in root["children"]} == {
            "serve.queue", "serve.validate", "serve.score"}

    def test_invalid_request_traced_without_score_span(self, make_service,
                                                       mem_sink):
        bus, sink = mem_sink
        service = make_service(tracer=make_tracer(bus))
        response = service.predict({"field_0": "not-an-int"})
        assert response.status == "invalid"
        names = {s.name for s in spans_from_events(sink.events)}
        assert "serve.validate" in names
        assert "serve.score" not in names
        validate = [s for s in spans_from_events(sink.events)
                    if s.name == "serve.validate"][0]
        assert validate.attrs["valid"] is False

    def test_degraded_request_has_degrade_span(self, make_service, mem_sink,
                                               request_features):
        bus, sink = mem_sink
        service = make_service(model=None, tracer=make_tracer(bus))
        response = service.predict(request_features)
        assert response.status == "degraded"
        by_name = {s.name: s for s in spans_from_events(sink.events)}
        assert by_name["serve.degrade"].attrs["reason"] == "model_unavailable"
        assert (by_name["serve.request"].attrs["degraded_reason"]
                == "model_unavailable")

    def test_serve_request_event_carries_trace_id(self, make_service,
                                                  mem_sink,
                                                  request_features):
        bus, sink = mem_sink
        service = make_service(tracer=make_tracer(bus))
        response = service.predict(request_features)
        (event,) = sink.of_type("serve_request")
        assert event.payload["trace_id"] == response.trace_id

    def test_untraced_service_still_answers(self, make_service,
                                            request_features):
        service = make_service(bus=None)
        response = service.predict(request_features,
                                   queued_at=service.tracer.clock())
        assert response.status == "ok"
        assert response.trace_id is None


class TestProtocolIntegration:
    def test_handle_request_line_threads_queued_at(self, make_service,
                                                   mem_sink,
                                                   request_features):
        bus, sink = mem_sink
        service = make_service(tracer=make_tracer(bus))
        line = json.dumps({"features": request_features, "request_id": "q7"})
        response, _ = handle_request_line(line, service,
                                          queued_at=service.tracer.clock())
        names = {s.name for s in spans_from_events(sink.events)}
        assert "serve.queue" in names
        assert response["trace_id"]

    def test_metrics_op_prometheus_format(self, make_service,
                                          request_features):
        service = make_service()
        service.predict(request_features)
        response, _ = handle_request_line(
            json.dumps({"op": "metrics", "format": "prometheus"}), service)
        assert response["content_type"].startswith("text/plain")
        samples = parse_prometheus_text(response["body"])
        assert samples[("repro_serve_requests_total", ())] == 1
        assert ("repro_serve_latency_s_count", ()) in samples
        bucket_names = {name for name, _ in samples}
        assert "repro_serve_latency_s_bucket" in bucket_names

    def test_metrics_op_default_stays_json(self, make_service):
        service = make_service()
        response, _ = handle_request_line(json.dumps({"op": "metrics"}),
                                          service)
        assert "content_type" not in response

    def test_drift_op_reports_state(self, make_service, schema,
                                    request_features):
        service = make_service()
        response, _ = handle_request_line(json.dumps({"op": "drift"}),
                                          service)
        assert response == {"drift": "disabled"}

        monitor = DriftMonitor(window=500,
                               field_names=schema.field_names)
        monitor.fit_reference(
            np.zeros((10, schema.num_fields), dtype=np.int64),
            cardinalities=schema.cardinalities)
        service = make_service(drift=monitor)
        response, _ = handle_request_line(json.dumps({"op": "drift"}),
                                          service)
        assert response == {"drift": "pending", "window": 500}
        for _ in range(3):
            service.predict(request_features)
        response, _ = handle_request_line(json.dumps({"op": "drift"}),
                                          service)
        assert response["window_n"] == 3
        assert set(response["field_psi"]) == set(schema.field_names)


class TestDriftFeeding:
    def _monitor(self, schema, window=4):
        monitor = DriftMonitor(window=window,
                               field_names=schema.field_names)
        rng = np.random.default_rng(0)
        x = np.stack([rng.integers(0, c, size=200)
                      for c in schema.cardinalities], axis=1)
        return monitor.fit_reference(x, cardinalities=schema.cardinalities)

    def test_served_requests_feed_the_monitor(self, make_service, schema,
                                              request_features):
        monitor = self._monitor(schema)
        service = make_service(drift=monitor)
        for _ in range(3):
            assert service.predict(request_features).status == "ok"
        assert monitor._win_n == 3

    def test_drift_failure_never_breaks_serving(self, make_service, schema,
                                                request_features):
        class ExplodingMonitor:
            def observe(self, row, score=None):
                raise RuntimeError("monitor bug")

        service = make_service(drift=ExplodingMonitor())
        response = service.predict(request_features)
        assert response.status == "ok"
        snapshot = service.metrics.snapshot()
        assert snapshot["drift.observe_errors"]["value"] == 1
