"""The request path: statuses, deadlines, breaker coupling, probes."""

import pytest

from repro.serving import (
    CircuitBreaker,
    LEVEL_FULL,
    LEVEL_MAIN_EFFECTS,
    OverloadedError,
    STATUS_DEGRADED,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_SHED,
)
from repro.serving.faults import FlakyModel, SlowModel


class TestOkPath:
    def test_valid_request_scores_fully(self, make_service, mem_sink):
        _, sink = mem_sink
        service = make_service()
        response = service.predict({"field_0": 1, "field_1": 2},
                                   request_id="r1")
        assert response.status == STATUS_OK
        assert response.served_by == LEVEL_FULL
        assert 0.0 <= response.probability <= 1.0
        assert response.request_id == "r1"
        assert response.latency_ms is not None
        event, = sink.of_type("serve_request")
        assert event.payload["status"] == STATUS_OK
        assert event.payload["request_id"] == "r1"

    def test_counters_accumulate(self, make_service):
        service = make_service()
        for _ in range(3):
            service.predict({"field_0": 1})
        assert service.metrics.counter("serve.requests").value == 3
        assert service.metrics.counter("serve.ok").value == 3
        assert service.metrics.histogram("serve.latency_s").count == 3

    def test_response_dict_drops_nones(self, make_service):
        response = make_service().predict({"field_0": 1})
        payload = response.as_dict()
        assert "error" not in payload
        assert "degraded_reason" not in payload


class TestInvalidPath:
    def test_invalid_request_reports_fields(self, make_service):
        service = make_service()
        response = service.predict({"wrong": 1})
        assert response.status == STATUS_INVALID
        assert response.probability is None
        assert not response.answered
        assert response.error["field_errors"] == {"wrong": "unknown field"}

    def test_invalid_does_not_touch_the_breaker(self, make_service):
        breaker = CircuitBreaker(failure_threshold=1)
        service = make_service(breaker=breaker)
        service.predict("not a dict")
        assert breaker.state == CircuitBreaker.CLOSED


class TestDegradedPaths:
    def test_scoring_failure_degrades_and_feeds_breaker(self, make_service,
                                                        lr_model, mem_sink):
        _, sink = mem_sink
        breaker = CircuitBreaker(failure_threshold=2)
        service = make_service(FlakyModel(lr_model, fail_first=10),
                               breaker=breaker)
        response = service.predict({"field_0": 1})
        assert response.status == STATUS_DEGRADED
        assert response.degraded_reason == "model_error"
        assert response.served_by == LEVEL_MAIN_EFFECTS
        assert response.answered  # degraded but still a usable probability
        service.predict({"field_0": 1})
        assert breaker.state == CircuitBreaker.OPEN
        assert sink.of_type("degrade")

    def test_open_breaker_skips_the_model(self, make_service, lr_model):
        breaker = CircuitBreaker(failure_threshold=1)
        flaky = FlakyModel(lr_model, fail_first=1)
        service = make_service(flaky, breaker=breaker)
        service.predict({"field_0": 1})   # fails, opens the breaker
        calls_before = flaky.calls
        response = service.predict({"field_0": 1})
        assert response.status == STATUS_DEGRADED
        assert response.degraded_reason == "breaker_open"
        assert flaky.calls == calls_before  # full model never invoked

    def test_deadline_precheck_answers_from_ladder(self, make_service):
        service = make_service()
        service.predict({"field_0": 1})  # warm the latency EWMA
        response = service.predict({"field_0": 1}, deadline_s=1e-12)
        assert response.status == STATUS_DEGRADED
        assert response.degraded_reason == "deadline"
        assert response.served_by == LEVEL_MAIN_EFFECTS
        assert service.metrics.counter("serve.deadline_misses").value == 1

    def test_late_answer_is_discarded(self, make_service, lr_model):
        slow = SlowModel(lr_model, delay_s=0.05)
        service = make_service(slow)
        # EWMA is cold (0.0) so the pre-check passes; the scoring itself
        # overshoots the deadline and the late answer must not be served.
        response = service.predict({"field_0": 1}, deadline_s=0.01)
        assert response.status == STATUS_DEGRADED
        assert response.degraded_reason == "deadline"
        assert slow.calls == 1  # model did run — its answer was discarded

    def test_default_deadline_from_constructor(self, make_service, lr_model):
        service = make_service(SlowModel(lr_model, delay_s=0.05),
                               deadline_s=0.01)
        response = service.predict({"field_0": 1})
        assert response.degraded_reason == "deadline"

    def test_no_model_serves_the_prior(self, make_service):
        service = make_service(None, prior_ctr=0.3)
        assert not service.ready
        response = service.predict({"field_0": 1})
        assert response.status == STATUS_DEGRADED
        assert response.degraded_reason == "model_unavailable"
        assert response.probability == pytest.approx(0.3)


class TestModelSwap:
    def test_swap_updates_version_and_readiness(self, make_service, lr_model):
        service = make_service(None)
        assert not service.ready
        old = service.swap_model(lr_model, "epoch-00000007")
        assert old == "initial"
        assert service.ready
        assert service.model_version == "epoch-00000007"
        assert service.predict({"field_0": 1}).status == STATUS_OK

    def test_cross_model_requires_transform(self, schema, rng, make_service):
        from repro.models.shallow import Poly2

        model = Poly2(schema.cardinalities, [4] * schema.num_pairs, rng=rng)
        with pytest.raises(ValueError, match="cross"):
            make_service(model)
        service = make_service(None)
        with pytest.raises(ValueError, match="cross"):
            service.swap_model(model, "v2")


class TestShedAndProbes:
    def test_shed_response_is_typed(self, make_service, mem_sink):
        _, sink = mem_sink
        service = make_service()
        error = OverloadedError("queue depth limit", depth=64)
        response = service.shed_response(error, request_id="r3")
        assert response.status == STATUS_SHED
        assert response.error["code"] == "overloaded"
        assert response.request_id == "r3"
        event, = sink.of_type("shed")
        assert event.payload["depth"] == 64

    def test_health_probe_snapshot(self, make_service):
        service = make_service()
        service.predict({"field_0": 1})
        health = service.health()
        assert health["status"] == "ok"
        assert health["ready"] is True
        assert health["breaker"] == "closed"
        assert health["requests"] == 1.0

    def test_readiness_probe(self, make_service, lr_model):
        service = make_service(None)
        assert service.readiness()["ready"] is False
        service.swap_model(lr_model, "v1")
        assert service.readiness()["ready"] is True
