"""Graceful drain: shutdown never silently drops an accepted request.

In-process :class:`SocketServer` regression tests for the drain
contract: once a request line is accepted, shutdown either answers it
(drain) or — if it arrives after the queue closed — answers with a
typed ``shutting_down`` response.  Either way the client reads exactly
one response per request; ``drain_dropped`` stays 0 on a clean drain.
"""

import json
import socket
import threading
import time

import pytest

from repro.serving.faults import SlowModel
from repro.serving.server import ServingStack, SocketServer

REQ = {"field_0": 1, "field_1": 2, "field_2": 3}


def make_server(make_service, lr_model, *, delay_s=0.0, **server_kwargs):
    model = SlowModel(lr_model, delay_s) if delay_s else lr_model
    service = make_service(model=model)
    stack = ServingStack(service=service, reloader=None,
                         model_name="lr", dataset="test")
    server = SocketServer(stack, **server_kwargs)
    host, port = server.start()
    return server, host, port


def connect(host, port):
    conn = socket.create_connection((host, port), timeout=10.0)
    return conn, conn.makefile("r", encoding="utf-8"), \
        conn.makefile("w", encoding="utf-8")


class TestGracefulDrain:
    def test_every_accepted_request_is_answered(self, make_service,
                                                lr_model):
        """Pipelined slow in-flight work + shutdown → zero silent drops."""
        server, host, port = make_server(make_service, lr_model,
                                         delay_s=0.01, workers=2,
                                         queue_depth=256)
        per_client, clients = 10, 4
        results = {}

        def client(tag):
            conn, rfile, wfile = connect(host, port)
            try:
                for i in range(per_client):
                    wfile.write(json.dumps(
                        {"features": REQ,
                         "request_id": f"{tag}-{i}"}) + "\n")
                wfile.flush()
                answers = [json.loads(rfile.readline())
                           for _ in range(per_client)]
                results[tag] = answers
            finally:
                conn.close()

        threads = [threading.Thread(target=client, args=(t,))
                   for t in range(clients)]
        for thread in threads:
            thread.start()
        time.sleep(0.03)              # shutdown lands mid-stream
        server.shutdown(drain_s=30.0)
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive()

        assert server.drain_dropped == 0
        assert server.pending == 0
        assert len(results) == clients
        for tag, answers in results.items():
            assert len(answers) == per_client
            ids = {a["request_id"] for a in answers}
            assert ids == {f"{tag}-{i}" for i in range(per_client)}
            for answer in answers:
                # Every answer is typed: a prediction, or an explicit
                # shed/shutting_down — never a missing or torn line.
                assert answer["status"] in ("ok", "degraded", "shed")

    def test_request_after_queue_close_gets_typed_answer(self, make_service,
                                                         lr_model):
        server, host, port = make_server(make_service, lr_model, workers=1)
        try:
            conn, rfile, wfile = connect(host, port)
            server.queue.close()      # shutdown raced ahead of this client
            wfile.write(json.dumps({"features": REQ,
                                    "request_id": "late"}) + "\n")
            wfile.flush()
            answer = json.loads(rfile.readline())
            assert answer["status"] == "shed"
            assert answer["request_id"] == "late"
            assert answer["error"]["reason"] == "shutting_down"
            conn.close()
        finally:
            server.shutdown(drain_s=1.0)

    def test_idle_shutdown_is_clean_and_fast(self, make_service, lr_model):
        server, _host, _port = make_server(make_service, lr_model)
        started = time.monotonic()
        server.shutdown(drain_s=30.0)
        assert time.monotonic() - started < 5.0
        assert server.drain_dropped == 0
        assert server.pending == 0

    def test_probes_still_answer_during_drain_window(self, make_service,
                                                     lr_model):
        """Ops like health bypass the queue, so they answer even after
        the queue has closed (monitoring keeps working while draining)."""
        server, host, port = make_server(make_service, lr_model, workers=1)
        try:
            server.queue.close()
            conn, rfile, wfile = connect(host, port)
            wfile.write(json.dumps({"op": "health"}) + "\n")
            wfile.flush()
            answer = json.loads(rfile.readline())
            assert answer["status"] == "ok"
            conn.close()
        finally:
            server.shutdown(drain_s=1.0)
