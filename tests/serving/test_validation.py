"""Request validation: OOV folding, per-field reports, typed rejection."""

import numpy as np
import pytest

from repro.data.vocabulary import OOV_ID, FieldVocabularies
from repro.serving import InvalidRequestError, RequestValidator


@pytest.fixture
def validator(schema):
    return RequestValidator(schema)


class TestValidRequests:
    def test_full_request_encodes_ids(self, validator):
        row = validator.validate({"field_0": 3, "field_1": 1, "field_2": 9})
        assert row.dtype == np.int64
        assert row.tolist() == [3, 1, 9]

    def test_missing_field_folds_to_oov(self, validator):
        row = validator.validate({"field_0": 3})
        assert row[1] == OOV_ID
        assert row[2] == OOV_ID

    def test_none_folds_to_oov(self, validator):
        row = validator.validate({"field_0": None, "field_1": 2})
        assert row[0] == OOV_ID

    def test_nan_folds_to_oov(self, validator):
        row = validator.validate({"field_0": float("nan")})
        assert row[0] == OOV_ID

    def test_out_of_range_id_folds_to_oov(self, validator):
        # Cardinality 8, so id 8 and beyond are unseen values, not errors.
        row = validator.validate({"field_0": 8})
        assert row[0] == OOV_ID
        row = validator.validate({"field_0": 10**12})
        assert row[0] == OOV_ID

    def test_negative_id_folds_to_oov(self, validator):
        assert validator.validate({"field_0": -1})[0] == OOV_ID

    def test_integral_float_accepted(self, validator):
        assert validator.validate({"field_0": 3.0})[0] == 3

    def test_numpy_integer_accepted(self, validator):
        assert validator.validate({"field_0": np.int64(5)})[0] == 5

    def test_reserved_envelope_keys_skipped(self, validator):
        row = validator.validate({"field_0": 2, "request_id": "r1",
                                  "priority": 9, "deadline_ms": 25})
        assert row[0] == 2


class TestRejectedRequests:
    @pytest.mark.parametrize("payload", ["text", 42, None, ["a"], (1,)])
    def test_non_mapping_rejected(self, validator, payload):
        with pytest.raises(InvalidRequestError) as info:
            validator.validate(payload)
        assert "__request__" in info.value.field_errors

    def test_unknown_field_rejected(self, validator):
        with pytest.raises(InvalidRequestError) as info:
            validator.validate({"field_0": 1, "no_such_field": 2})
        assert info.value.field_errors == {"no_such_field": "unknown field"}

    def test_non_string_key_rejected(self, validator):
        with pytest.raises(InvalidRequestError) as info:
            validator.validate({123: 4})
        assert "123" in info.value.field_errors

    @pytest.mark.parametrize("value", ["str", 3.5, True, [1], {"x": 1}])
    def test_bad_value_types_rejected(self, validator, value):
        with pytest.raises(InvalidRequestError) as info:
            validator.validate({"field_0": value})
        assert "field_0" in info.value.field_errors

    def test_error_payload_is_json_shaped(self, validator):
        with pytest.raises(InvalidRequestError) as info:
            validator.validate({"field_0": "oops", "mystery": 1})
        payload = info.value.as_payload()
        assert payload["code"] == "invalid_request"
        assert set(payload["field_errors"]) == {"field_0", "mystery"}


class TestVocabularyMode:
    def test_raw_values_map_through_vocabularies(self, schema):
        raw = np.array([["a", "x", "p"], ["b", "x", "q"], ["a", "y", "p"]],
                       dtype=object)
        vocabs = FieldVocabularies(min_count=1).fit(raw)
        validator = RequestValidator(schema, vocabularies=vocabs)
        row = validator.validate({"field_0": "a", "field_1": "never-seen"})
        assert row[0] == vocabs.vocabularies[0].lookup("a")
        assert row[1] == OOV_ID

    def test_unhashable_raw_value_rejected(self, schema):
        raw = np.array([["a", "x", "p"]], dtype=object)
        vocabs = FieldVocabularies(min_count=1).fit(raw)
        validator = RequestValidator(schema, vocabularies=vocabs)
        with pytest.raises(InvalidRequestError) as info:
            validator.validate({"field_0": ["un", "hashable"]})
        assert "field_0" in info.value.field_errors

    def test_vocabulary_count_must_match_schema(self, schema):
        raw = np.array([["a", "x"]], dtype=object)  # 2 fields, schema has 3
        vocabs = FieldVocabularies(min_count=1).fit(raw)
        with pytest.raises(ValueError):
            RequestValidator(schema, vocabularies=vocabs)


class TestValidateBatch:
    def test_mixed_batch_reports_per_row(self, validator):
        rows, errors = validator.validate_batch([
            {"field_0": 1},
            {"bad_field": 1},
            {"field_1": 2},
        ])
        assert rows.shape == (3, 3)
        assert rows.dtype == np.int64
        assert errors[0] is None and errors[2] is None
        assert isinstance(errors[1], InvalidRequestError)


class TestOfflineOnlineAgreement:
    """The OOV-fold rule is one rule, applied by two layers: requests
    validated online encode to exactly the ids the training pipeline
    produces offline for the same raw values."""

    @pytest.fixture
    def fitted_pipeline(self, tmp_path):
        from repro.data import CTRPipeline, read_csv

        path = tmp_path / "train.csv"
        path.write_text(
            "label,site,device\n"
            "1,siteA,phone\n0,siteB,phone\n1,siteA,desktop\n"
            "0,siteA,phone\n1,siteB,desktop\n0,,phone\n0,,desktop\n")
        pipeline = CTRPipeline(categorical=["site", "device"], min_count=2)
        pipeline.fit(read_csv(path))
        return pipeline

    @pytest.fixture
    def online_validator(self, fitted_pipeline):
        vocabs = FieldVocabularies(min_count=fitted_pipeline.min_count)
        vocabs.vocabularies = [
            fitted_pipeline._vocabularies[name]
            for name in fitted_pipeline.field_names]
        return RequestValidator(fitted_pipeline.schema,
                                vocabularies=vocabs)

    @pytest.mark.parametrize("site,device", [
        ("siteA", "phone"),
        ("siteB", "desktop"),
        ("never_seen", "phone"),   # unseen folds to OOV in both layers
        ("", "desktop"),           # "" is a learned value in both layers
        (None, "phone"),           # None folds to OOV in both layers
    ])
    def test_request_matches_offline_encoding(self, fitted_pipeline,
                                              online_validator,
                                              site, device):
        online = online_validator.validate({"site": site, "device": device})
        offline = fitted_pipeline.transform(
            {"label": ["0"], "site": [site], "device": [device]}).x[0]
        assert online.tolist() == offline.tolist()

    def test_missing_field_matches_offline_none(self, fitted_pipeline,
                                                online_validator):
        online = online_validator.validate({"device": "phone"})
        offline = fitted_pipeline.transform(
            {"label": ["0"], "site": [None], "device": ["phone"]}).x[0]
        assert online.tolist() == offline.tolist()
