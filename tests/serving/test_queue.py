"""Bounded priority queue: ordering, shedding, eviction, close."""

import threading

import pytest

from repro.serving import BoundedRequestQueue, OverloadedError


@pytest.fixture
def shed_log():
    return []


@pytest.fixture
def queue(shed_log):
    return BoundedRequestQueue(
        max_depth=3,
        on_shed=lambda item, error: shed_log.append((item, error)))


class TestOrdering:
    def test_fifo_within_a_priority(self, queue):
        for item in "abc":
            assert queue.put(item)
        assert [queue.get(timeout=0.1) for _ in range(3)] == ["a", "b", "c"]

    def test_higher_priority_served_first(self, queue):
        queue.put("low", priority=0)
        queue.put("high", priority=9)
        queue.put("mid", priority=5)
        assert queue.get(timeout=0.1) == "high"
        assert queue.get(timeout=0.1) == "mid"
        assert queue.get(timeout=0.1) == "low"

    def test_get_times_out_empty(self, queue):
        assert queue.get(timeout=0.01) is None


class TestShedding:
    def test_depth_limit_sheds_incoming(self, queue, shed_log):
        for item in "abc":
            queue.put(item)
        assert not queue.put("overflow")
        assert len(queue) == 3
        (item, error), = shed_log
        assert item == "overflow"
        assert isinstance(error, OverloadedError)
        assert error.depth == 3
        assert error.as_payload()["code"] == "overloaded"

    def test_high_priority_evicts_queued_low(self, queue, shed_log):
        queue.put("keep", priority=5)
        queue.put("victim", priority=0)
        queue.put("keep2", priority=5)
        assert queue.put("vip", priority=9)
        (item, error), = shed_log
        assert item == "victim"
        assert "evicted" in error.reason
        assert queue.get(timeout=0.1) == "vip"

    def test_equal_priority_does_not_evict(self, queue, shed_log):
        for item in "abc":
            queue.put(item, priority=1)
        assert not queue.put("late", priority=1)
        assert shed_log[0][0] == "late"

    def test_wait_limit_sheds(self, shed_log):
        queue = BoundedRequestQueue(
            max_depth=100, max_wait_s=0.5,
            latency_estimate=lambda: 0.2,
            on_shed=lambda item, error: shed_log.append((item, error)))
        assert queue.put("a")
        assert queue.put("b")
        assert queue.put("c")       # wait = 2 * 0.2 <= 0.5, accepted
        assert not queue.put("d")   # wait = 3 * 0.2 > 0.5, shed
        assert shed_log[0][0] == "d"
        assert shed_log[0][1].estimated_wait_s == pytest.approx(0.6)

    def test_estimated_wait_reporting(self):
        queue = BoundedRequestQueue(max_depth=10,
                                    latency_estimate=lambda: 0.1)
        assert queue.estimated_wait_s() == 0.0
        queue.put("a")
        queue.put("b")
        assert queue.estimated_wait_s() == pytest.approx(0.2)
        assert BoundedRequestQueue(max_depth=2).estimated_wait_s() is None


class TestLifecycle:
    def test_close_wakes_blocked_getter(self, queue):
        results = []
        thread = threading.Thread(
            target=lambda: results.append(queue.get(timeout=5.0)))
        thread.start()
        queue.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_put_after_close_raises(self, queue):
        queue.close()
        with pytest.raises(RuntimeError):
            queue.put("x")

    def test_close_drains_remaining_entries(self, queue):
        queue.put("a")
        queue.close()
        assert queue.get(timeout=0.1) == "a"
        assert queue.get(timeout=0.1) is None

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            BoundedRequestQueue(max_depth=0)
