"""Process-level serving chaos: real sockets, SIGKILL, restart, recovery.

The scenario the subsystem exists for: a serving process is killed hard
mid-traffic; a replacement started against the same checkpoint directory
must come back ready with the same promoted weights, and a replica whose
circuit breaker is open must still answer every request (degraded, not
erroring).  These spawn real ``repro serve`` subprocesses, so they are
the slowest tests in the suite — CI runs them in the dedicated
``serving-chaos`` job.
"""

import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.resilience.checkpoint import CheckpointManager
from repro.serving.faults import CheckpointSwapper

pytestmark = pytest.mark.serving

SRC = str(Path(__file__).resolve().parents[2] / "src")
SAMPLES = "2000"  # keep dataset builds in the subprocesses fast


@pytest.fixture(scope="module")
def checkpoint_dir(tmp_path_factory):
    """A checkpoint directory holding one valid LR checkpoint.

    Built through the same stack constructor the CLI uses, so the
    checkpointed model matches what the spawned servers instantiate.
    """
    from repro.serving.server import build_serving_stack

    directory = tmp_path_factory.mktemp("serve-ckpts")
    stack = build_serving_stack("LR", "criteo", "quick",
                                samples=int(SAMPLES))
    CheckpointSwapper(CheckpointManager(directory)).write_valid(
        stack.service.model)
    return directory


def start_server(*extra_args):
    """Spawn ``repro serve --mode socket`` and wait for its ready line."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--model", "LR",
         "--samples", SAMPLES, "--mode", "socket", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env={**os.environ, "PYTHONPATH": SRC})
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        raise AssertionError(
            f"server exited before ready (code {proc.wait()})")
    ready = json.loads(line)
    assert ready["status"] == "ready"
    return proc, ready["host"], ready["port"]


def rpc(host, port, payloads, timeout=30.0):
    """Send JSONL payloads on one connection; one response per payload."""
    responses = []
    with socket.create_connection((host, port), timeout=timeout) as conn:
        stream = conn.makefile("rw")
        for payload in payloads:
            stream.write(json.dumps(payload) + "\n")
            stream.flush()
            responses.append(json.loads(stream.readline()))
    return responses


def shutdown(proc, host, port):
    try:
        rpc(host, port, [{"op": "shutdown"}], timeout=5.0)
    except OSError:
        pass
    try:
        proc.wait(timeout=10.0)
    except subprocess.TimeoutExpired:
        proc.kill()


class TestKillRestart:
    def test_sigkill_loses_no_checkpoint_state(self, checkpoint_dir):
        proc, host, port = start_server("--checkpoint-dir",
                                        str(checkpoint_dir))
        try:
            ready, = rpc(host, port, [{"op": "ready"}])
            assert ready["ready"] is True
            assert ready["model_version"] == "epoch-00000001"

            ok, bad = rpc(host, port, [
                {"features": {"field_0": 1}, "request_id": "a"},
                {"features": {"no_such_field": 1}, "request_id": "b"},
            ])
            assert ok["status"] == "ok"
            assert 0.0 <= ok["probability"] <= 1.0
            assert bad["status"] == "invalid"
            assert bad["error"]["code"] == "invalid_request"
        finally:
            # Hard kill mid-session: no graceful shutdown, no flushing.
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10.0)

        # The checkpoint directory is untouched by the crash...
        assert CheckpointManager(checkpoint_dir).latest_valid() is not None

        # ...so a replacement replica recovers the same promoted state.
        proc, host, port = start_server("--checkpoint-dir",
                                        str(checkpoint_dir))
        try:
            ready, = rpc(host, port, [{"op": "ready"}])
            assert ready["ready"] is True
            assert ready["model_version"] == "epoch-00000001"
            response, = rpc(host, port,
                            [{"features": {"field_0": 1}}])
            assert response["status"] == "ok"
        finally:
            shutdown(proc, host, port)


class TestBatchedSocket:
    def test_concurrent_pipelined_clients_coalesce(self):
        """Concurrent clients pipelining requests against a batching
        server: every request is answered for its own connection, and
        the ``serve.batch_size`` histogram proves coalescing happened."""
        import threading

        proc, host, port = start_server(
            "--batch-size", "8", "--batch-wait-ms", "25",
            "--workers", "2", "--queue-depth", "512",
            "--inject", "slow:0.01")
        n_clients, n_requests = 4, 16
        failures = []

        def client(tag):
            try:
                with socket.create_connection((host, port),
                                              timeout=30.0) as conn:
                    stream = conn.makefile("rw")
                    # Pipeline: write everything, then read everything.
                    for i in range(n_requests):
                        stream.write(json.dumps(
                            {"features": {"field_0": i % 5},
                             "request_id": f"{tag}-{i}"}) + "\n")
                    stream.flush()
                    got = [json.loads(stream.readline())
                           for _ in range(n_requests)]
                expected = {f"{tag}-{i}" for i in range(n_requests)}
                assert {r["request_id"] for r in got} == expected
                for response in got:
                    assert response["status"] in ("ok", "degraded", "shed")
            except Exception as exc:  # surfaced after join
                failures.append((tag, exc))

        try:
            threads = [threading.Thread(target=client, args=(f"c{c}",))
                       for c in range(n_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not failures, failures

            metrics, = rpc(host, port, [{"op": "metrics"}])
            histogram = metrics["serve.batch_size"]
            assert histogram["count"] >= 1
            # Pipelined concurrent load over slow scoring must have
            # coalesced at least one multi-request batch.
            assert histogram["max"] > 1
            assert metrics["serve.batches"]["value"] == histogram["count"]
        finally:
            shutdown(proc, host, port)


class TestDegradedUnderOpenBreaker:
    def test_flaky_replica_answers_every_request(self):
        # Long cooldown so the breaker stays open for the whole test even
        # on a slow CI machine (no half-open flap between assertions).
        proc, host, port = start_server("--inject", "flaky:100",
                                        "--breaker-threshold", "2",
                                        "--breaker-cooldown", "300")
        try:
            responses = rpc(host, port, [
                {"features": {"field_0": i}, "request_id": f"r{i}"}
                for i in range(6)
            ])
            for response in responses:
                assert response["status"] == "degraded"
                assert 0.0 <= response["probability"] <= 1.0
            assert {r["degraded_reason"] for r in responses[2:]} == {
                "breaker_open"}
            health, = rpc(host, port, [{"op": "health"}])
            assert health["breaker"] == "open"
            assert health["ready"] is True  # degraded ≠ unready
        finally:
            shutdown(proc, host, port)
