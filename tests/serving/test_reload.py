"""Hot reload: promotion, corruption rollback, golden-set vetoes."""

import numpy as np
import pytest

from repro.models.shallow import LogisticRegression
from repro.resilience.checkpoint import CheckpointManager
from repro.serving import GoldenSet, HotReloader
from repro.serving.faults import CheckpointSwapper


@pytest.fixture
def manager(tmp_path):
    return CheckpointManager(tmp_path / "ckpts")


@pytest.fixture
def swapper(manager):
    return CheckpointSwapper(manager)


@pytest.fixture
def reload_stack(schema, make_service, manager, mem_sink):
    """(service, reloader, sink) with a deterministic model factory."""
    _, sink = mem_sink
    bus, _ = mem_sink
    service = make_service()

    def factory():
        return LogisticRegression(schema.cardinalities,
                                  rng=np.random.default_rng(123))

    reloader = HotReloader(service, manager, factory, bus=bus,
                           sleep=lambda _d: None)
    return service, reloader, sink


class TestPromotion:
    def test_empty_directory_is_a_noop(self, reload_stack):
        service, reloader, _ = reload_stack
        assert reloader.poll_once() is False
        assert service.model_version == "initial"

    def test_valid_checkpoint_promotes(self, schema, reload_stack, swapper):
        service, reloader, sink = reload_stack
        new_model = LogisticRegression(schema.cardinalities,
                                       rng=np.random.default_rng(77))
        swapper.write_valid(new_model)
        old_ref = service.model

        assert reloader.poll_once() is True
        assert service.model_version == "epoch-00000001"
        assert service.model is not old_ref  # fresh instance, atomic swap
        event, = sink.of_type("reload")
        assert event.payload["status"] == "ok"
        assert event.payload["previous_version"] == "initial"

    def test_promoted_weights_match_the_checkpoint(self, schema,
                                                   reload_stack, swapper):
        service, reloader, _ = reload_stack
        new_model = LogisticRegression(schema.cardinalities,
                                       rng=np.random.default_rng(77))
        swapper.write_valid(new_model)
        reloader.poll_once()
        for name, value in new_model.state_dict().items():
            np.testing.assert_array_equal(
                service.model.state_dict()[name], value)

    def test_older_epochs_are_not_reloaded(self, schema, reload_stack,
                                           swapper):
        service, reloader, _ = reload_stack
        swapper.write_valid(service.model)
        reloader.poll_once()
        assert reloader.poll_once() is False  # same epoch, nothing newer

    def test_in_flight_traffic_survives_a_swap(self, reload_stack, swapper):
        service, reloader, _ = reload_stack
        assert service.predict({"field_0": 1}).status == "ok"
        swapper.write_valid(service.model)
        reloader.poll_once()
        assert service.predict({"field_0": 1}).status == "ok"


class TestRollback:
    @pytest.mark.parametrize("kind", ["truncated", "garbage"])
    def test_corrupt_checkpoint_rolls_back(self, reload_stack, swapper, kind):
        service, reloader, sink = reload_stack
        swapper.write_corrupt(kind)
        assert reloader.poll_once() is False
        assert service.model_version == "initial"
        event, = sink.of_type("reload")
        assert event.payload["status"] == "corrupt"

    def test_bad_file_is_not_retried_every_poll(self, reload_stack, swapper):
        service, reloader, sink = reload_stack
        swapper.write_corrupt("truncated")
        reloader.poll_once()
        reloader.poll_once()
        reloader.poll_once()
        assert len(sink.of_type("reload")) == 1  # remembered as bad

    def test_rewritten_bad_file_gets_a_fresh_chance(self, schema,
                                                    reload_stack, swapper,
                                                    manager):
        import os

        service, reloader, _ = reload_stack
        path = swapper.write_corrupt("truncated")
        reloader.poll_once()
        # Replace the corrupt file with a valid checkpoint at the same
        # epoch and bump its mtime: the reloader must try again.
        good = LogisticRegression(schema.cardinalities,
                                  rng=np.random.default_rng(5))
        from repro.nn.optim import SGD
        from repro.resilience.checkpoint import TrainingCheckpoint

        checkpoint = TrainingCheckpoint.capture(
            good, SGD(good.parameters(), lr=0.0), epoch=1, global_step=0)
        manager.save(checkpoint)
        stat = os.stat(path)
        os.utime(path, (stat.st_atime, stat.st_mtime + 10))
        assert reloader.poll_once() is True
        assert service.model_version == "epoch-00000001"

    def test_architecture_mismatch_rolls_back(self, reload_stack, manager):
        service, reloader, sink = reload_stack
        wrong = LogisticRegression([3, 3], rng=np.random.default_rng(0))
        CheckpointSwapper(manager).write_valid(wrong)
        assert reloader.poll_once() is False
        assert service.model_version == "initial"
        event, = sink.of_type("reload")
        assert event.payload["status"] == "corrupt"


class TestGoldenSet:
    def test_healthy_model_passes(self, schema, make_service, lr_model):
        service = make_service()
        golden = GoldenSet([{"field_0": 1}, {"field_1": 2}])
        assert golden.check(service, lr_model) is None

    def test_drifted_model_fails(self, schema, make_service, lr_model):
        service = make_service()
        golden = GoldenSet([{"field_0": 1}], expected=[0.999],
                           tolerance=1e-6)
        reason = golden.check(service, lr_model)
        assert reason is not None and "drifted" in reason

    def test_record_pins_current_answers(self, make_service, lr_model):
        service = make_service()
        golden = GoldenSet.record(service, [{"field_0": 1}, {"field_1": 3}])
        assert golden.check(service, lr_model) is None

    def test_golden_failure_vetoes_promotion(self, schema, reload_stack,
                                             swapper, manager, make_service):
        service, _, sink = reload_stack

        def factory():
            return LogisticRegression(schema.cardinalities,
                                      rng=np.random.default_rng(123))

        golden = GoldenSet([{"field_0": 1}], expected=[0.999],
                           tolerance=1e-6)
        reloader = HotReloader(service, manager, factory, golden=golden,
                               sleep=lambda _d: None)
        swapper.write_valid(service.model)
        assert reloader.poll_once() is False
        assert service.model_version == "initial"
        assert service.metrics.counter("serve.reload.golden_failed").value == 1

    def test_mismatched_expected_length_rejected(self):
        with pytest.raises(ValueError):
            GoldenSet([{"a": 1}], expected=[0.5, 0.5])

    def test_requests_validated_once_across_polls(self, make_service,
                                                  lr_model):
        """Golden requests are fixed, so repeated checks must ride the
        cached-row fast path instead of re-validating every poll."""
        service = make_service()
        calls = []
        original = service.validator.validate

        def counting_validate(features):
            calls.append(features)
            return original(features)

        service.validator.validate = counting_validate
        golden = GoldenSet([{"field_0": 1}, {"field_1": 2}])
        for _ in range(5):
            assert golden.check(service, lr_model) is None
        assert len(calls) == 2  # once per request, not once per poll

    def test_invalid_golden_request_still_names_the_field(self, make_service,
                                                          lr_model):
        """The fast path must not swallow validation reports."""
        service = make_service()
        golden = GoldenSet([{"not_a_field": 1}])
        reason = golden.check(service, lr_model)
        assert reason is not None
        assert "failed to score" in reason
        assert "not_a_field" in reason


class TestConcurrentSwap:
    """A reload landing mid-``predict_batch`` must never mix versions.

    The batch path snapshots (model, version) once per batch; a hot swap
    racing it may only affect *later* batches — one coalesced batch
    answering from two different models would make micro-batching
    observably different from sequential scoring.
    """

    def test_batches_never_mix_model_versions(self, schema, reload_stack,
                                              swapper):
        import threading

        from repro.serving import BatchRequest

        service, reloader, _ = reload_stack
        requests = [BatchRequest(features={"field_0": i % 4,
                                           "field_1": i % 3,
                                           "field_2": i % 5})
                    for i in range(8)]
        stop = threading.Event()
        swap_errors = []

        def churn():
            while not stop.is_set():
                try:
                    swapper.write_valid(LogisticRegression(
                        schema.cardinalities,
                        rng=np.random.default_rng(77)))
                    reloader.poll_once()
                except Exception as exc:  # noqa: BLE001 — fail the test
                    swap_errors.append(exc)
                    return

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            versions_seen = set()
            for _ in range(50):
                responses = service.predict_batch(requests)
                batch_versions = {r.model_version for r in responses
                                  if r.status == "ok"}
                assert len(batch_versions) <= 1  # one snapshot per batch
                versions_seen |= batch_versions
        finally:
            stop.set()
            churner.join(timeout=30.0)
        assert not swap_errors
        # The race was real: scoring overlapped more than one version.
        assert len(versions_seen) >= 2

    def test_single_requests_racing_a_swap_stay_typed(self, reload_stack,
                                                      swapper):
        import threading

        service, reloader, _ = reload_stack
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                swapper.write_valid(service.model)
                reloader.poll_once()

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            for _ in range(100):
                response = service.predict({"field_0": 1})
                assert response.status in ("ok", "degraded")
                assert response.model_version is not None
        finally:
            stop.set()
            churner.join(timeout=30.0)


class TestBackgroundThread:
    def test_start_stop_polls_in_the_background(self, schema, reload_stack,
                                                swapper):
        service, reloader, _ = reload_stack
        reloader.interval_s = 0.02
        reloader.start()
        try:
            swapper.write_valid(
                LogisticRegression(schema.cardinalities,
                                   rng=np.random.default_rng(9)))
            import time

            deadline = time.monotonic() + 5.0
            while (service.model_version == "initial"
                   and time.monotonic() < deadline):
                time.sleep(0.02)
        finally:
            reloader.stop()
        assert service.model_version == "epoch-00000001"
        assert reloader._thread is None


class TestReloadSpans:
    def test_idle_poll_emits_no_span(self, reload_stack):
        from repro.obs.tracing import spans_from_events

        _, reloader, sink = reload_stack
        reloader.poll_once()
        assert spans_from_events(sink.events) == []

    def test_promotion_emits_serve_reload_span(self, schema, reload_stack,
                                               swapper):
        from repro.obs.tracing import spans_from_events

        _, reloader, sink = reload_stack
        swapper.write_valid(LogisticRegression(schema.cardinalities,
                                               rng=np.random.default_rng(7)))
        assert reloader.poll_once() is True
        (span,) = spans_from_events(sink.events)
        assert span.name == "serve.reload"
        assert span.attrs["promoted"] is True
        assert span.attrs["outcome"] == "ok"
        assert span.attrs["version"] == "epoch-00000001"

    def test_corrupt_checkpoint_span_marks_outcome(self, reload_stack,
                                                   swapper):
        from repro.obs.tracing import spans_from_events

        _, reloader, sink = reload_stack
        swapper.write_corrupt()
        assert reloader.poll_once() is False
        (span,) = spans_from_events(sink.events)
        assert span.attrs["promoted"] is False
        assert span.attrs["outcome"] == "corrupt"
