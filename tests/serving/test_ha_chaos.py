"""The HA acceptance scenario from the issue, end to end.

A 3-replica pool under pipelined load survives (a) one replica wedging
mid-stream and (b) a poisoned checkpoint pushed through the canary
path — with zero user-visible errors beyond typed ``degraded`` answers,
the rollback recorded in the manifest, and (separately, via real
``repro serve`` subprocesses) bit-for-bit parity between
``--replicas 1 --hedge-ms 0`` and the single-instance path.
"""

import json
import os
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.models.shallow import LogisticRegression
from repro.resilience.checkpoint import CheckpointManager
from repro.serving import (GoldenSet, ReplicaPool, RestartBackoff,
                           RolloutPolicy)
from repro.serving.faults import (CheckpointSwapper, PoisonedCheckpoint,
                                  valid_requests, wedge_replica)
from repro.serving.rollout import CanaryController, STAGE_IDLE

pytestmark = pytest.mark.serving

SRC = str(Path(__file__).resolve().parents[2] / "src")
SAMPLES = "2000"

REQ = {"field_0": 1, "field_1": 2, "field_2": 3}


class TestInProcessAcceptance:
    def test_pool_survives_wedge_and_poisoned_canary(self, schema,
                                                     make_service, mem_sink,
                                                     tmp_path):
        """Pipelined load + one wedged replica + one poisoned canary
        push: every user answer stays typed, the poison's version never
        reaches a user, and the rollback lands in the manifest."""
        bus, _sink = mem_sink
        manager = CheckpointManager(tmp_path / "ckpts")

        def build_service(_replica_id=0):
            return make_service(model=LogisticRegression(
                schema.cardinalities, rng=np.random.default_rng(0)))

        pool = ReplicaPool(
            [build_service(i) for i in range(3)],
            service_factory=build_service,
            min_healthy=1, failure_threshold=2, stale_after_s=0.1,
            hedge_ms=10.0, dispatch_timeout_s=0.5, bus=bus,
            restart_backoff=lambda: RestartBackoff(
                base_delay=0.001, max_delay=0.001,
                rng=np.random.default_rng(0)))

        def factory():
            return LogisticRegression(schema.cardinalities,
                                      rng=np.random.default_rng(0))

        controller = CanaryController(
            pool, manager, factory,
            golden=GoldenSet(list(valid_requests(schema, count=4))),
            policy=RolloutPolicy(mirror_fraction=1.0, min_mirrored=8),
            bus=bus, sleep=lambda _d: None)

        stop = threading.Event()
        answers, client_errors = [], []

        def client():
            while not stop.is_set():
                try:
                    answers.append(pool.predict(REQ))
                except Exception as exc:  # noqa: BLE001 — must not happen
                    client_errors.append(exc)
                    return

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        wedged = None
        try:
            # (a) wedge one replica mid-stream; the prober must
            # quarantine and restart it without any client noticing.
            time.sleep(0.05)
            wedged = wedge_replica(pool.replicas[0])
            deadline = time.monotonic() + 30.0
            while (pool.replicas[0].restarts == 0
                   and time.monotonic() < deadline):
                pool.check_replicas()
                time.sleep(0.02)
            assert pool.replicas[0].restarts >= 1
            wedged.release()  # free the blocked dispatch threads

            # (b) push a poisoned (drift) checkpoint: canary-staged,
            # mirrored, judged, rolled back — all under live load.
            poison = PoisonedCheckpoint(manager).write(
                LogisticRegression(schema.cardinalities,
                                   rng=np.random.default_rng(0)),
                kind="drift")
            deadline = time.monotonic() + 30.0
            while (controller.manifest.data["rollbacks"] == 0
                   and time.monotonic() < deadline):
                controller.poll_once()
                pool.check_replicas()
                time.sleep(0.01)
        finally:
            stop.set()
            if wedged is not None:
                wedged.release()
            for thread in threads:
                thread.join(timeout=30.0)

        assert not client_errors
        assert controller.manifest.data["rollbacks"] == 1
        assert poison in controller.manifest.bad_paths
        assert controller.stage == STAGE_IDLE
        assert len(answers) > 0
        poison_version = "epoch-00000001"
        for response in answers:
            # Typed answers only; the poisoned version is never visible.
            assert response.status in ("ok", "degraded")
            assert response.model_version != poison_version
        # The fleet is whole again after both faults.
        assert len(pool.healthy_replicas()) == 3


# ----------------------------------------------------------------------
# Subprocess smoke: the CLI wiring of the same guarantees
# ----------------------------------------------------------------------
def start_server(*extra_args):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--model", "LR",
         "--samples", SAMPLES, "--mode", "socket", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env={**os.environ, "PYTHONPATH": SRC})
    line = proc.stdout.readline()
    if not line:
        proc.kill()
        raise AssertionError(
            f"server exited before ready (code {proc.wait()})")
    ready = json.loads(line)
    assert ready["status"] == "ready"
    return proc, ready["host"], ready["port"]


def rpc(host, port, payloads, timeout=30.0):
    responses = []
    with socket.create_connection((host, port), timeout=timeout) as conn:
        stream = conn.makefile("rw")
        for payload in payloads:
            stream.write(json.dumps(payload) + "\n")
            stream.flush()
            responses.append(json.loads(stream.readline()))
    return responses


def shutdown(proc, host, port):
    try:
        rpc(host, port, [{"op": "shutdown"}], timeout=5.0)
    except OSError:
        pass
    try:
        proc.wait(timeout=10.0)
    except subprocess.TimeoutExpired:
        proc.kill()


class TestPoolOfOneParity:
    def test_replicas_1_hedge_0_matches_single_instance(self):
        """The differential guarantee at the CLI boundary: a pool of one
        with hedging off answers bit-for-bit like the plain service."""
        requests = [{"features": {"field_0": i % 4, "field_1": i % 3},
                     "request_id": f"p{i}"} for i in range(8)]
        requests.append({"features": {"no_such_field": 1},
                         "request_id": "bad"})

        single_proc, host, port = start_server()
        try:
            single = rpc(host, port, requests)
        finally:
            shutdown(single_proc, host, port)

        pool_proc, host, port = start_server("--replicas", "1",
                                             "--hedge-ms", "0")
        try:
            pooled = rpc(host, port, requests)
        finally:
            shutdown(pool_proc, host, port)

        for a, b in zip(single, pooled):
            assert a["status"] == b["status"]
            assert a["request_id"] == b["request_id"]
            assert a.get("served_by") == b.get("served_by")
            assert a.get("model_version") == b.get("model_version")
            pa, pb = a.get("probability"), b.get("probability")
            if pa is None or pb is None:
                assert pa == pb
            else:
                assert struct.pack("<d", pa) == struct.pack("<d", pb)


class TestPooledServerSmoke:
    def test_pipelined_clients_against_a_wedgy_pool(self):
        """3 replicas, replica 0 flaky-injected: every pipelined request
        answers typed, and per-replica series reach the metrics op."""
        proc, host, port = start_server("--replicas", "3",
                                        "--hedge-ms", "50",
                                        "--inject", "flaky:3")
        n_clients, n_requests = 3, 12
        failures = []

        def client(tag):
            try:
                with socket.create_connection((host, port),
                                              timeout=30.0) as conn:
                    stream = conn.makefile("rw")
                    for i in range(n_requests):
                        stream.write(json.dumps(
                            {"features": {"field_0": i % 5},
                             "request_id": f"{tag}-{i}"}) + "\n")
                    stream.flush()
                    got = [json.loads(stream.readline())
                           for _ in range(n_requests)]
                assert {r["request_id"] for r in got} == {
                    f"{tag}-{i}" for i in range(n_requests)}
                for response in got:
                    assert response["status"] in ("ok", "degraded", "shed")
            except Exception as exc:  # surfaced after join
                failures.append((tag, exc))

        try:
            threads = [threading.Thread(target=client, args=(f"c{c}",))
                       for c in range(n_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not failures, failures

            health, = rpc(host, port, [{"op": "health"}])
            assert health["replicas"], "pool health must list replicas"
            metrics, = rpc(host, port, [{"op": "metrics"}])
            assert any(key.startswith("replica.0.") for key in metrics), (
                "per-replica series missing from the pool snapshot")
        finally:
            shutdown(proc, host, port)

    def test_poisoned_canary_rolls_back_over_the_wire(self, tmp_path):
        """Exact accounting end to end: live traffic mirrors onto a
        poisoned canary, the rollout op reports the rollback, and no
        user answer ever carried the poisoned version."""
        from repro.serving.server import build_serving_stack

        ckpt_dir = tmp_path / "ckpts"
        stack = build_serving_stack("LR", "criteo", "quick",
                                    samples=int(SAMPLES))
        manager = CheckpointManager(ckpt_dir)
        CheckpointSwapper(manager).write_valid(stack.service.model)

        proc, host, port = start_server(
            "--replicas", "3", "--canary-mirror", "1.0",
            "--checkpoint-dir", str(ckpt_dir),
            "--reload-interval", "0.1")
        try:
            ready, = rpc(host, port, [{"op": "ready"}])
            assert ready["model_version"] == "epoch-00000001"
            PoisonedCheckpoint(manager).write(stack.service.model,
                                              kind="drift")
            poison_version = "epoch-00000002"
            deadline = time.monotonic() + 60.0
            rollbacks = 0
            while rollbacks == 0 and time.monotonic() < deadline:
                answers = rpc(host, port, [
                    {"features": {"field_0": i % 5},
                     "request_id": f"m{i}"} for i in range(16)])
                for response in answers:
                    assert response["status"] in ("ok", "degraded")
                    assert response["model_version"] != poison_version
                state, = rpc(host, port, [{"op": "rollout"}])
                rollbacks = state.get("rollbacks", 0)
            assert rollbacks == 1, "canary rollback never landed"
            state, = rpc(host, port, [{"op": "rollout"}])
            assert state["stage"] == "idle"
            assert state["bad"], "poison must be remembered as bad"
            # The fleet still serves the promoted epoch after rollback.
            ready, = rpc(host, port, [{"op": "ready"}])
            assert ready["model_version"] == "epoch-00000001"
        finally:
            shutdown(proc, host, port)
