"""Retry/backoff: delay shapes, retry budgets, error propagation."""

import numpy as np
import pytest

from repro.serving import RestartBackoff, backoff_delays, retry_with_backoff


class TestBackoffDelays:
    def test_exponential_without_jitter(self):
        delays = list(backoff_delays(4, base_delay=0.1, factor=2.0,
                                     max_delay=10.0, jitter=0.0))
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_cap_applies(self):
        delays = list(backoff_delays(5, base_delay=1.0, factor=10.0,
                                     max_delay=3.0, jitter=0.0))
        assert delays == pytest.approx([1.0, 3.0, 3.0, 3.0, 3.0])

    def test_jitter_stays_in_band(self):
        rng = np.random.default_rng(0)
        for delay in backoff_delays(50, base_delay=1.0, factor=1.0,
                                    max_delay=1.0, jitter=0.5, rng=rng):
            assert 0.5 <= delay <= 1.5

    def test_deterministic_under_seeded_rng(self):
        a = list(backoff_delays(5, rng=np.random.default_rng(7)))
        b = list(backoff_delays(5, rng=np.random.default_rng(7)))
        assert a == b

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            list(backoff_delays(-1))
        with pytest.raises(ValueError):
            list(backoff_delays(1, jitter=1.0))
        with pytest.raises(ValueError):
            list(backoff_delays(1, mode="half"))


class TestFullJitter:
    """Property tests for mode="full" over a sweep of parameter sets."""

    PARAMS = [
        dict(base_delay=0.05, factor=2.0, max_delay=2.0),
        dict(base_delay=0.2, factor=3.0, max_delay=1.0),
        dict(base_delay=1.0, factor=1.5, max_delay=4.0),
        dict(base_delay=0.01, factor=10.0, max_delay=0.5),
    ]

    @pytest.mark.parametrize("params", PARAMS)
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_every_delay_within_its_cap(self, params, seed):
        rng = np.random.default_rng(seed)
        delays = list(backoff_delays(20, mode="full", rng=rng, **params))
        assert len(delays) == 20
        for i, delay in enumerate(delays):
            cap = min(params["base_delay"] * params["factor"] ** i,
                      params["max_delay"])
            assert 0.0 <= delay <= cap

    @pytest.mark.parametrize("params", PARAMS)
    def test_caps_are_monotone_then_flat(self, params):
        caps = [min(params["base_delay"] * params["factor"] ** i,
                    params["max_delay"]) for i in range(20)]
        assert all(a <= b for a, b in zip(caps, caps[1:]))
        assert caps[-1] == params["max_delay"]

    @pytest.mark.parametrize("seed", [0, 3, 99])
    def test_deterministic_under_injected_rng(self, seed):
        a = list(backoff_delays(10, mode="full",
                                rng=np.random.default_rng(seed)))
        b = list(backoff_delays(10, mode="full",
                                rng=np.random.default_rng(seed)))
        assert a == b

    def test_jitter_parameter_is_ignored_in_full_mode(self):
        a = list(backoff_delays(10, mode="full", jitter=0.0,
                                rng=np.random.default_rng(5)))
        b = list(backoff_delays(10, mode="full", jitter=0.9,
                                rng=np.random.default_rng(5)))
        assert a == b

    def test_full_mode_spreads_wider_than_equal(self):
        # Full jitter can land anywhere in [0, cap]; equal jitter stays
        # in [cap/2, 3cap/2] at jitter=0.5.  With one shared cap the two
        # supports differ below cap/2.
        rng = np.random.default_rng(0)
        full = list(backoff_delays(500, base_delay=1.0, factor=1.0,
                                   max_delay=1.0, mode="full", rng=rng))
        assert min(full) < 0.5
        rng = np.random.default_rng(0)
        equal = list(backoff_delays(500, base_delay=1.0, factor=1.0,
                                    max_delay=1.0, jitter=0.5, rng=rng))
        assert min(equal) >= 0.5


class TestRestartBackoff:
    def test_schedule_advances_and_respects_caps(self):
        backoff = RestartBackoff(base_delay=0.2, factor=2.0, max_delay=1.0,
                                 rng=np.random.default_rng(0))
        for i in range(10):
            cap = min(0.2 * 2.0 ** i, 1.0)
            delay = backoff.next_delay()
            assert 0.0 <= delay <= cap
        assert backoff.attempt == 10

    def test_reset_restarts_the_schedule(self):
        backoff = RestartBackoff(base_delay=0.2, factor=2.0, max_delay=10.0,
                                 rng=np.random.default_rng(0))
        for _ in range(5):
            backoff.next_delay()
        backoff.reset()
        assert backoff.attempt == 0
        assert backoff.next_delay() <= 0.2

    def test_deterministic_under_injected_rng(self):
        a = RestartBackoff(rng=np.random.default_rng(11))
        b = RestartBackoff(rng=np.random.default_rng(11))
        assert [a.next_delay() for _ in range(8)] \
            == [b.next_delay() for _ in range(8)]

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            RestartBackoff(base_delay=0.0)
        with pytest.raises(ValueError):
            RestartBackoff(base_delay=1.0, max_delay=0.5)


class TestRetryWithBackoff:
    def test_success_needs_no_sleep(self):
        sleeps = []
        assert retry_with_backoff(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_recovers_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        sleeps = []
        result = retry_with_backoff(flaky, retries=4, sleep=sleeps.append,
                                    rng=np.random.default_rng(0))
        assert result == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2

    def test_budget_exhausted_reraises_original(self):
        def always_fails():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            retry_with_backoff(always_fails, retries=2,
                               sleep=lambda _d: None)

    def test_non_retryable_error_raises_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise KeyError("logic bug")

        with pytest.raises(KeyError):
            retry_with_backoff(broken, retries=5, sleep=lambda _d: None)
        assert calls["n"] == 1

    def test_on_retry_sees_each_attempt(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("again")
            return True

        retry_with_backoff(flaky, retries=3, sleep=lambda _d: None,
                           on_retry=lambda attempt, exc: seen.append(
                               (attempt, str(exc))))
        assert [a for a, _ in seen] == [1, 2]
