"""Retry/backoff: delay shapes, retry budgets, error propagation."""

import numpy as np
import pytest

from repro.serving import backoff_delays, retry_with_backoff


class TestBackoffDelays:
    def test_exponential_without_jitter(self):
        delays = list(backoff_delays(4, base_delay=0.1, factor=2.0,
                                     max_delay=10.0, jitter=0.0))
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_cap_applies(self):
        delays = list(backoff_delays(5, base_delay=1.0, factor=10.0,
                                     max_delay=3.0, jitter=0.0))
        assert delays == pytest.approx([1.0, 3.0, 3.0, 3.0, 3.0])

    def test_jitter_stays_in_band(self):
        rng = np.random.default_rng(0)
        for delay in backoff_delays(50, base_delay=1.0, factor=1.0,
                                    max_delay=1.0, jitter=0.5, rng=rng):
            assert 0.5 <= delay <= 1.5

    def test_deterministic_under_seeded_rng(self):
        a = list(backoff_delays(5, rng=np.random.default_rng(7)))
        b = list(backoff_delays(5, rng=np.random.default_rng(7)))
        assert a == b

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            list(backoff_delays(-1))
        with pytest.raises(ValueError):
            list(backoff_delays(1, jitter=1.0))


class TestRetryWithBackoff:
    def test_success_needs_no_sleep(self):
        sleeps = []
        assert retry_with_backoff(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_recovers_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        sleeps = []
        result = retry_with_backoff(flaky, retries=4, sleep=sleeps.append,
                                    rng=np.random.default_rng(0))
        assert result == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2

    def test_budget_exhausted_reraises_original(self):
        def always_fails():
            raise OSError("persistent")

        with pytest.raises(OSError, match="persistent"):
            retry_with_backoff(always_fails, retries=2,
                               sleep=lambda _d: None)

    def test_non_retryable_error_raises_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise KeyError("logic bug")

        with pytest.raises(KeyError):
            retry_with_backoff(broken, retries=5, sleep=lambda _d: None)
        assert calls["n"] == 1

    def test_on_retry_sees_each_attempt(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("again")
            return True

        retry_with_backoff(flaky, retries=3, sleep=lambda _d: None,
                           on_retry=lambda attempt, exc: seen.append(
                               (attempt, str(exc))))
        assert [a for a, _ in seen] == [1, 2]
