"""ReplicaPool: routing, failover, hedging, quarantine, floor, metrics."""

import threading
import time

import numpy as np
import pytest

from repro.models.shallow import LogisticRegression
from repro.serving import (REPLICA_HEALTHY, REPLICA_UNHEALTHY, ReplicaPool,
                           RestartBackoff)
from repro.serving.faults import (SlowModel, WedgedModel, slow_replica,
                                  wedge_replica)

REQ = {"field_0": 1, "field_1": 2, "field_2": 3}


@pytest.fixture
def make_pool(schema, make_service, mem_sink):
    """Factory for an n-replica pool with per-replica model instances."""
    bus, _ = mem_sink

    def _make(n=3, **kwargs):
        services = [
            make_service(model=LogisticRegression(
                schema.cardinalities, rng=np.random.default_rng(0)))
            for _ in range(n)
        ]
        kwargs.setdefault("bus", bus)
        kwargs.setdefault("restart_backoff",
                          lambda: RestartBackoff(
                              base_delay=0.001, max_delay=0.001,
                              rng=np.random.default_rng(0)))
        return ReplicaPool(services, **kwargs)

    return _make


def bits(probability):
    """Bit pattern of a float64 — bitwise comparison, not a tolerance."""
    import struct

    return (None if probability is None
            else struct.pack("<d", probability))


def assert_identical(a, b, where=""):
    """Same contract as the PR-7 differential harness: every semantic
    field equal, probability equal bitwise (trace ids / latencies are
    per-call by construction)."""
    assert a.status == b.status, where
    assert a.served_by == b.served_by, where
    assert a.degraded_reason == b.degraded_reason, where
    assert a.error == b.error, where
    assert a.model_version == b.model_version, where
    assert a.request_id == b.request_id, where
    assert bits(a.probability) == bits(b.probability), (
        f"{where}: {a.probability!r} != {b.probability!r} bitwise")


class TestPassthrough:
    def test_pool_of_one_is_bitwise_identical_to_the_service(self, make_pool):
        pool = make_pool(n=1)
        solo = pool.replicas[0].service
        for features in (REQ, {"field_0": 0}, {"unknown_field": 1}, "junk"):
            assert_identical(pool.predict(features, request_id="r"),
                             solo.predict(features, request_id="r"),
                             where=repr(features))

    def test_pool_of_one_batch_is_bitwise_identical(self, make_pool):
        pool = make_pool(n=1)
        solo = pool.replicas[0].service
        batch = [REQ, {"field_0": 5}, {"field_1": 1}]
        for a, b in zip(pool.predict_batch(batch),
                        solo.predict_batch(batch)):
            assert_identical(a, b)


class TestRouting:
    def test_genuine_answer_from_some_replica(self, make_pool):
        pool = make_pool(n=3)
        response = pool.predict(REQ, request_id="r1")
        assert response.status == "ok"
        assert 0.0 <= response.probability <= 1.0

    def test_least_inflight_picks_lowest_id_on_ties(self, make_pool):
        """_pick registers the dispatch at pick time, so each pick
        shifts the least-inflight choice until the token is released."""
        pool = make_pool(n=3)
        first, t0 = pool._pick()
        assert first.id == 0
        second, t1 = pool._pick()
        assert second.id == 1     # replica 0 already has in-flight work
        first.end(t0, ok=True)
        third, t2 = pool._pick()
        assert third.id == 0      # drained: back to lowest id
        second.end(t1, ok=True)
        third.end(t2, ok=True)

    def test_invalid_requests_stay_typed(self, make_pool):
        pool = make_pool(n=2)
        response = pool.predict("not a mapping")
        assert response.status == "invalid"

    def test_no_healthy_replica_degrades_with_type(self, make_pool):
        pool = make_pool(n=2, min_healthy=1)
        for replica in pool.replicas:
            replica.state = REPLICA_UNHEALTHY
        response = pool.predict(REQ, request_id="r9")
        assert response.status == "degraded"
        assert response.degraded_reason == "no_healthy_replica"
        assert response.request_id == "r9"

    def test_pool_health_aggregates_replicas(self, make_pool):
        pool = make_pool(n=3)
        health = pool.health()
        assert health["size"] == 3
        assert health["healthy"] == 3
        assert len(health["replicas"]) == 3
        assert health["ready"] is True


class TestFailover:
    def test_erroring_primary_fails_over_to_healthy_replica(self, make_pool):
        pool = make_pool(n=2, hedge_ms=5.0, dispatch_timeout_s=2.0)

        def boom(*a, **k):
            raise RuntimeError("replica down")

        pool.replicas[0].service.predict = boom
        response = pool.predict(REQ)
        assert response.status == "ok"
        assert pool.metrics.counter("pool.replica_errors").value == 1

    def test_batch_fails_over_once_then_degrades(self, make_pool):
        pool = make_pool(n=2, dispatch_timeout_s=2.0)

        def boom(*a, **k):
            raise RuntimeError("replica down")

        pool.replicas[0].service.predict_batch = boom
        responses = pool.predict_batch([REQ, REQ])
        assert [r.status for r in responses] == ["ok", "ok"]
        assert pool.metrics.counter("pool.failovers").value == 1

    def test_batch_never_mixes_versions_within_one_batch(self, make_pool):
        """Concurrent swap during pool batches: one version per batch."""
        pool = make_pool(n=2)
        stop = threading.Event()

        def swapper():
            flip = 0
            while not stop.is_set():
                flip += 1
                for replica in pool.replicas:
                    service = replica.service
                    service.swap_model(service.model, f"v{flip % 2}")

        thread = threading.Thread(target=swapper, daemon=True)
        thread.start()
        try:
            for _ in range(30):
                versions = {r.model_version
                            for r in pool.predict_batch([REQ] * 8)}
                assert len(versions) == 1
        finally:
            stop.set()
            thread.join(timeout=2.0)


class TestHedging:
    def test_slow_primary_is_hedged_and_fast_replica_wins(self, make_pool):
        pool = make_pool(n=2, hedge_ms=10.0, dispatch_timeout_s=5.0)
        slow_replica(pool.replicas[0], delay_s=0.5)
        started = time.monotonic()
        response = pool.predict(REQ)
        elapsed = time.monotonic() - started
        assert response.status == "ok"
        assert elapsed < 0.45  # did not wait for the slow primary
        assert pool.metrics.counter("pool.hedges").value == 1
        assert pool.metrics.counter("pool.hedge_wins").value == 1

    def test_fast_primary_needs_no_hedge(self, make_pool):
        pool = make_pool(n=2, hedge_ms=200.0)
        assert pool.predict(REQ).status == "ok"
        assert pool.metrics.counter("pool.hedges").value == 0

    def test_hedging_disabled_by_default(self, make_pool):
        pool = make_pool(n=2)
        assert pool._hedge_delay_s() is None

    def test_hedging_needs_two_healthy_replicas(self, make_pool):
        pool = make_pool(n=2, hedge_ms=5.0)
        pool.replicas[1].state = REPLICA_UNHEALTHY
        assert pool._hedge_delay_s() is None

    def test_hedging_suppressed_under_overload(self, make_pool):
        pool = make_pool(n=2, hedge_ms=5.0)
        tokens = [replica.begin() for replica in pool.replicas
                  for _ in range(3)]
        assert pool._hedge_delay_s() is None
        assert pool.metrics.counter("pool.hedges_suppressed").value == 1
        del tokens

    def test_auto_mode_floors_the_delay(self, make_pool):
        pool = make_pool(n=2, hedge_ms="auto", hedge_floor_ms=25.0)
        delay = pool._hedge_delay_s()
        assert delay is not None and delay >= 0.025
        for _ in range(20):
            pool._observe_latency(0.001)
        assert pool._hedge_delay_s() == pytest.approx(0.025)

    def test_bad_hedge_spec_rejected(self, make_pool):
        with pytest.raises(ValueError):
            make_pool(n=2, hedge_ms="sometimes")


class TestWedgeAndQuarantine:
    def test_wedged_replica_goes_stale_not_its_peers(self, make_pool):
        pool = make_pool(n=2, stale_after_s=0.05, hedge_ms=10.0,
                         dispatch_timeout_s=2.0)
        wedged = wedge_replica(pool.replicas[0], max_wedge_s=5.0)
        try:
            response = pool.predict(REQ)  # hedge answers despite the wedge
            assert response.status == "ok"
            time.sleep(0.1)
            assert pool.replicas[0].is_stale(0.05)
            assert not pool.replicas[1].is_stale(0.05)
        finally:
            wedged.release()

    def test_quarantine_and_restart_through_factory(self, schema,
                                                    make_service, make_pool):
        rebuilt = []

        def factory(replica_id):
            rebuilt.append(replica_id)
            return make_service(model=LogisticRegression(
                schema.cardinalities, rng=np.random.default_rng(1)))

        pool = make_pool(n=3, service_factory=factory, failure_threshold=2,
                         min_healthy=1)
        pool.replicas[0].note_failure()
        pool.replicas[0].note_failure()
        pool.check_replicas()
        assert pool.replicas[0].state == REPLICA_UNHEALTHY
        assert pool.metrics.counter("pool.quarantined").value == 1
        time.sleep(0.005)  # let the (tiny) restart backoff elapse
        pool.check_replicas()
        assert rebuilt == [0]
        assert pool.replicas[0].state == REPLICA_HEALTHY
        assert pool.replicas[0].restarts == 1
        assert pool.metrics.counter("pool.restarts").value == 1

    def test_min_healthy_floor_blocks_quarantine(self, make_pool, mem_sink):
        pool = make_pool(n=2, min_healthy=2, failure_threshold=1)
        pool.replicas[0].note_failure()
        pool.check_replicas()
        assert pool.replicas[0].state == REPLICA_HEALTHY  # floor held
        assert pool.metrics.counter("pool.floor_holds").value == 1

    def test_failed_restart_reenters_backoff(self, make_pool):
        def factory(replica_id):
            raise RuntimeError("cannot rebuild yet")

        pool = make_pool(n=2, service_factory=factory, failure_threshold=1)
        pool.replicas[0].note_failure()
        pool.check_replicas()
        time.sleep(0.005)
        pool.check_replicas()
        assert pool.replicas[0].state == REPLICA_UNHEALTHY
        assert pool.metrics.counter("pool.restart_failures").value == 1
        assert pool.replicas[0].next_restart_at is not None

    def test_quarantine_emits_replica_events(self, make_pool, mem_sink):
        _, sink = mem_sink
        pool = make_pool(n=3, failure_threshold=1,
                         service_factory=lambda i: None)
        pool.replicas[2].note_failure()
        pool.check_replicas()
        events = [e for e in sink.of_type("replica")
                  if e.payload["status"] == "quarantined"]
        assert len(events) == 1
        assert events[0].payload["replica"] == "replica-2"
        assert events[0].payload["reason"] == "failures"


class TestKillMidStream:
    def test_killing_one_replica_loses_zero_accepted_requests(self,
                                                              make_pool):
        """The tentpole guarantee: a replica dying mid-stream never costs
        an accepted request a genuine-or-typed answer."""
        pool = make_pool(n=3, hedge_ms=10.0, dispatch_timeout_s=2.0,
                         failure_threshold=2)
        answers = []
        errors = []

        def client(k):
            try:
                for i in range(10):
                    answers.append(pool.predict(REQ, request_id=f"c{k}-{i}"))
            except Exception as exc:  # noqa: BLE001 — the assertion below
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(k,))
                   for k in range(4)]
        for thread in threads:
            thread.start()
        # Kill replica 0 mid-stream: every later scoring on it explodes.
        def boom(*a, **k):
            raise RuntimeError("SIGKILL")

        pool.replicas[0].service.predict = boom
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(answers) == 40
        assert all(r.status in ("ok", "degraded") for r in answers)


class TestPoolMetrics:
    def test_snapshot_folds_in_per_replica_series(self, make_pool):
        pool = make_pool(n=2)
        pool.predict(REQ)
        pool.replicas[1].service.predict(REQ)  # touch the idle replica too
        snapshot = pool.metrics.snapshot()
        assert "pool.dispatches" in snapshot
        per_replica = [k for k in snapshot if k.startswith("replica.")]
        assert any(k.startswith("replica.0.") for k in per_replica)
        assert any(k.startswith("replica.1.") for k in per_replica)

    def test_prometheus_rendering_exposes_replica_series(self, make_pool):
        from repro.obs.export import render_prometheus

        pool = make_pool(n=2)
        pool.predict(REQ)
        body = render_prometheus(pool.metrics.snapshot())
        assert "repro_pool_dispatches_total" in body
        assert "repro_replica_0_serve_requests_total" in body


class TestFaultInjectors:
    def test_wedged_model_blocks_until_release(self, schema):
        model = LogisticRegression(schema.cardinalities,
                                   rng=np.random.default_rng(0))
        wedged = WedgedModel(model, max_wedge_s=5.0)
        done = threading.Event()

        def score():
            from repro.data.dataset import Batch
            wedged.predict_proba(Batch(
                x=np.zeros((1, len(schema.cardinalities)), dtype=np.int64),
                x_cross=None, y=np.zeros(1)))
            done.set()

        thread = threading.Thread(target=score, daemon=True)
        thread.start()
        assert not done.wait(timeout=0.1)  # blocked
        wedged.release()
        assert done.wait(timeout=5.0)
        assert wedged.wedged_calls == 1

    def test_slow_and_wedge_injectors_keep_the_version(self, make_pool):
        pool = make_pool(n=2)
        before = pool.replicas[0].service.model_version
        slow = slow_replica(pool.replicas[0], delay_s=0.0)
        assert isinstance(pool.replicas[0].service.model, SlowModel)
        assert pool.replicas[0].service.model_version == before
        del slow
