"""Chaos suite: every fault class → a typed response + a matching event.

The contract under test (docs/serving.md): no fault a client or the
environment can produce may crash the service or leave a request
unanswered — each fault class resolves to a typed status and leaves the
matching observability event, so an incident reconstructs from the
trace alone.  The process-level kill/restart variant lives in
``test_server_e2e.py``; these run in-process so each fault is
deterministic.
"""

import numpy as np
import pytest

from repro.models.shallow import LogisticRegression
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.faults import InjectedCrash
from repro.serving import (
    BoundedRequestQueue,
    CircuitBreaker,
    HotReloader,
    PredictionService,
    STATUS_DEGRADED,
    STATUS_INVALID,
    STATUS_OK,
)
from repro.serving.faults import (
    CheckpointSwapper,
    FlakyModel,
    ServeCrash,
    SlowModel,
    malformed_requests,
    valid_requests,
)

pytestmark = pytest.mark.serving


class TestMalformedRequestChaos:
    def test_every_malformed_payload_gets_a_typed_answer(self, schema,
                                                         make_service,
                                                         mem_sink):
        _, sink = mem_sink
        service = make_service()
        for payload in malformed_requests(schema):
            response = service.predict(payload)
            assert response.status == STATUS_INVALID
            assert response.error["code"] == "invalid_request"
        # One serve_request event per fault, and the service still works.
        assert len(sink.of_type("serve_request")) == len(
            malformed_requests(schema))
        for request in valid_requests(schema, count=2):
            assert service.predict(request).status == STATUS_OK


class TestScoringFailureChaos:
    def test_flaky_model_degrades_then_opens_the_breaker(self, schema,
                                                         lr_model, mem_sink):
        bus, sink = mem_sink
        service = PredictionService(
            FlakyModel(lr_model, fail_first=100), schema, prior_ctr=0.3,
            breaker=CircuitBreaker(failure_threshold=3), bus=bus)
        responses = [service.predict(request, request_id=f"r{i}")
                     for i, request in enumerate(
                         valid_requests(schema, count=8))]
        assert all(r.status == STATUS_DEGRADED for r in responses)
        assert all(r.answered for r in responses)  # degraded-but-answered
        reasons = [r.degraded_reason for r in responses]
        assert reasons[:3] == ["model_error"] * 3
        assert set(reasons[3:]) == {"breaker_open"}
        assert len(sink.of_type("degrade")) == len(responses)
        assert service.breaker.state == CircuitBreaker.OPEN


class TestSlowModelChaos:
    def test_deadline_misses_degrade_inside_the_budget(self, schema,
                                                       lr_model, mem_sink):
        bus, sink = mem_sink
        service = PredictionService(
            SlowModel(lr_model, delay_s=0.05), schema, prior_ctr=0.3,
            deadline_s=0.005, bus=bus)
        for request in valid_requests(schema, count=3):
            response = service.predict(request)
            assert response.status == STATUS_DEGRADED
            assert response.degraded_reason == "deadline"
            assert response.answered
        assert service.metrics.counter("serve.deadline_misses").value == 3
        assert {e.payload["reason"]
                for e in sink.of_type("degrade")} == {"deadline"}


class TestCorruptCheckpointChaos:
    def test_corruption_mid_traffic_rolls_back_silently(self, schema,
                                                        make_service,
                                                        mem_sink, tmp_path):
        bus, sink = mem_sink
        service = make_service()
        manager = CheckpointManager(tmp_path / "ckpts")
        reloader = HotReloader(
            service, manager,
            lambda: LogisticRegression(schema.cardinalities,
                                       rng=np.random.default_rng(123)),
            bus=bus, sleep=lambda _d: None)
        swapper = CheckpointSwapper(manager)

        assert service.predict({"field_0": 1}).status == STATUS_OK
        swapper.write_corrupt("truncated")
        reloader.poll_once()
        assert service.predict({"field_0": 1}).status == STATUS_OK
        assert service.model_version == "initial"
        event, = sink.of_type("reload")
        assert event.payload["status"] == "corrupt"


class TestOverloadChaos:
    def test_saturated_queue_sheds_with_typed_503(self, make_service,
                                                  mem_sink):
        _, sink = mem_sink
        service = make_service()
        shed_responses = []
        queue = BoundedRequestQueue(
            max_depth=2,
            on_shed=lambda item, error: shed_responses.append(
                service.shed_response(error, request_id=item)))
        for i in range(5):
            queue.put(f"r{i}")
        assert len(shed_responses) == 3
        for response in shed_responses:
            assert response.status == "shed"
            assert response.error["code"] == "overloaded"
        assert len(sink.of_type("shed")) == 3
        assert service.metrics.counter("serve.shed").value == 3


class TestCrashRestartChaos:
    def test_restart_recovers_checkpoint_state(self, schema, make_service,
                                               tmp_path):
        from repro.serving.server import handle_request_line

        manager = CheckpointManager(tmp_path / "ckpts")
        service = make_service()
        service._crash = ServeCrash(at_request=3)
        CheckpointSwapper(manager).write_valid(service.model)

        survived = 0
        with pytest.raises(InjectedCrash):
            for request in valid_requests(schema, count=5):
                import json

                response, _ = handle_request_line(json.dumps(request),
                                                  service)
                assert response["status"] == STATUS_OK
                survived += 1
        assert survived == 2  # crash injected on the third request

        # "Restart": a fresh service against the same checkpoint dir must
        # recover the persisted weights and report ready.
        loaded = manager.latest_valid()
        assert loaded is not None
        checkpoint, _path = loaded
        replacement = LogisticRegression(schema.cardinalities,
                                         rng=np.random.default_rng(999))
        replacement.load_state_dict(checkpoint.model_state)
        restarted = make_service(replacement)
        assert restarted.ready
        for name, value in service.model.state_dict().items():
            np.testing.assert_array_equal(
                restarted.model.state_dict()[name], value)
        assert restarted.predict({"field_0": 1}).status == STATUS_OK
