"""Canary rollout: detect, mirror, promote, rollback, manifest resume."""

import json
import time

import numpy as np
import pytest

from repro.models.shallow import LogisticRegression
from repro.resilience.checkpoint import CheckpointManager
from repro.serving import (GoldenSet, REPLICA_CANARY, REPLICA_HEALTHY,
                           ReplicaPool, RolloutManifest, RolloutPolicy,
                           select_initial_checkpoint)
from repro.serving.faults import (CheckpointSwapper, PoisonedCheckpoint,
                                  valid_requests)
from repro.serving.rollout import (CanaryController, STAGE_IDLE,
                                   STAGE_MIRRORING, STAGE_PROMOTING)

REQ = {"field_0": 1, "field_1": 2, "field_2": 3}


@pytest.fixture
def manager(tmp_path):
    return CheckpointManager(tmp_path / "ckpts")


@pytest.fixture
def swapper(manager):
    return CheckpointSwapper(manager)


@pytest.fixture
def poisoner(manager):
    return PoisonedCheckpoint(manager)


@pytest.fixture
def make_rollout(schema, make_service, manager, mem_sink):
    """(pool, controller) factory with a deterministic model factory."""
    bus, _ = mem_sink

    def factory():
        return LogisticRegression(schema.cardinalities,
                                  rng=np.random.default_rng(123))

    def _make(n=3, golden=True, policy=None, **kwargs):
        services = [
            make_service(model=LogisticRegression(
                schema.cardinalities, rng=np.random.default_rng(0)))
            for _ in range(n)
        ]
        pool = ReplicaPool(services, bus=bus)
        golden_set = (GoldenSet(list(valid_requests(schema, count=4)))
                      if golden else None)
        policy = policy or RolloutPolicy(mirror_fraction=1.0, min_mirrored=8)
        controller = CanaryController(pool, manager, factory,
                                      golden=golden_set, policy=policy,
                                      bus=bus, sleep=lambda _d: None,
                                      **kwargs)
        return pool, controller

    return _make


def mirror_traffic(controller, count, score=0.5, status="ok",
                   latency_ms=1.0):
    """Deterministically feed the mirror hook with fleet observations."""
    from repro.serving.service import PredictionResponse

    for _ in range(count):
        controller.observe(REQ, PredictionResponse(
            status=status, probability=score, served_by="full",
            model_version="initial", latency_ms=latency_ms))


def mirror_agreeing_traffic(pool, controller, count):
    """Mirror traffic whose fleet score matches the canary's — a healthy
    candidate scoring live traffic identically to the fleet."""
    canary = [r for r in pool.replicas if r.state == REPLICA_CANARY][0]
    score = canary.service.predict(REQ).probability
    mirror_traffic(controller, count, score=score)


class TestDetectAndStage:
    def test_empty_directory_is_a_noop(self, make_rollout):
        _pool, controller = make_rollout()
        assert controller.poll_once() is False
        assert controller.stage == STAGE_IDLE

    def test_new_checkpoint_stages_a_canary(self, schema, make_rollout,
                                            swapper, mem_sink):
        _, sink = mem_sink
        pool, controller = make_rollout()
        swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(7)))
        assert controller.poll_once() is True
        assert controller.stage == STAGE_MIRRORING
        canary = [r for r in pool.replicas if r.state == REPLICA_CANARY]
        assert len(canary) == 1
        assert canary[0].service.model_version == "epoch-00000001"
        # The fleet (user rotation) still serves the old version.
        assert pool.model_version == "initial"
        statuses = [e.payload["status"] for e in sink.of_type("rollout")]
        assert "canary_loaded" in statuses

    def test_canary_replica_never_serves_user_traffic(self, schema,
                                                      make_rollout, swapper):
        pool, controller = make_rollout()
        swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(7)))
        controller.poll_once()
        for _ in range(20):
            response = pool.predict(REQ)
            assert response.model_version == "initial"

    def test_floor_defers_canary_until_capacity(self, schema, make_rollout,
                                                swapper):
        pool, controller = make_rollout(n=2)
        pool.min_healthy = 2  # no spare replica for canary duty
        swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(7)))
        assert controller.poll_once() is False
        assert controller.stage == STAGE_IDLE
        pool.min_healthy = 1
        assert controller.poll_once() is True
        assert controller.stage == STAGE_MIRRORING

    def test_nan_poison_is_vetoed_by_golden_before_mirroring(
            self, schema, make_rollout, poisoner, mem_sink):
        _, sink = mem_sink
        pool, controller = make_rollout()
        path = poisoner.write(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(7)), kind="nan")
        assert controller.poll_once() is False
        assert controller.stage == STAGE_IDLE
        assert path in controller.manifest.bad_paths
        assert all(r.state == REPLICA_HEALTHY for r in pool.replicas)
        statuses = [e.payload["status"] for e in sink.of_type("rollout")]
        assert "golden_failed" in statuses
        # ... and it is never retried on later polls.
        assert controller.poll_once() is False

    def test_corrupt_checkpoint_is_marked_bad(self, make_rollout, swapper):
        _pool, controller = make_rollout()
        path = swapper.write_corrupt()
        assert controller.poll_once() is False
        assert path in controller.manifest.bad_paths


class TestPromotion:
    def test_healthy_candidate_promotes_fleet_wide(self, schema,
                                                   make_rollout, swapper,
                                                   mem_sink):
        _, sink = mem_sink
        pool, controller = make_rollout()
        swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(123)))
        controller.poll_once()      # detect + stage
        mirror_agreeing_traffic(pool, controller, 10)
        assert controller.poll_once() is True   # evaluate + promote
        assert controller.stage == STAGE_IDLE
        for replica in pool.replicas:
            assert replica.state == REPLICA_HEALTHY
            assert replica.service.model_version == "epoch-00000001"
        assert controller.manifest.data["promotions"] == 1
        assert controller.manifest.data["current_epoch"] == 1
        statuses = [e.payload["status"] for e in sink.of_type("rollout")]
        assert "promoted" in statuses
        assert statuses.count("promoted_replica") == 2  # the non-canaries

    def test_promotion_gives_each_replica_its_own_model(self, schema,
                                                        make_rollout,
                                                        swapper):
        pool, controller = make_rollout()
        swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(123)))
        controller.poll_once()
        mirror_agreeing_traffic(pool, controller, 10)
        controller.poll_once()
        models = [id(r.service.model) for r in pool.replicas]
        assert len(set(models)) == len(models)

    def test_mirrored_traffic_via_live_pool_dispatch(self, schema,
                                                     make_rollout, swapper):
        """End-to-end: the pool's own mirror hook feeds the controller.

        The candidate holds the same weights as the fleet (seed 0), so
        live mirrored traffic agrees and the rollout promotes.
        """
        pool, controller = make_rollout()
        swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(0)))
        controller.poll_once()
        deadline = time.monotonic() + 10.0
        while (controller.stage == STAGE_MIRRORING
               and time.monotonic() < deadline):
            pool.predict(REQ)
            controller.poll_once()
        assert controller.stage == STAGE_IDLE
        assert controller.manifest.data["promotions"] == 1


class TestRollback:
    def test_drift_poison_rolls_back_automatically(self, schema,
                                                   make_rollout, poisoner,
                                                   mem_sink):
        _, sink = mem_sink
        pool, controller = make_rollout(golden=False)
        path = poisoner.write(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(0)),
            kind="drift")
        assert controller.poll_once() is True   # canary staged
        # Live traffic keeps answering from the fleet while mirroring.
        for _ in range(10):
            assert pool.predict(REQ).model_version == "initial"
        mirror_traffic(controller, 10, score=0.5)
        assert controller.poll_once() is True   # evaluate → rollback
        assert controller.stage == STAGE_IDLE
        assert controller.manifest.data["rollbacks"] == 1
        assert path in controller.manifest.bad_paths
        for replica in pool.replicas:
            assert replica.state == REPLICA_HEALTHY
            assert replica.service.model_version == "initial"
        statuses = [e.payload["status"] for e in sink.of_type("rollout")]
        assert "rolled_back" in statuses
        assert controller.metrics.counter("rollout.rollbacks").value == 1

    def test_rolled_back_checkpoint_is_never_retried(self, schema,
                                                     make_rollout, poisoner):
        pool, controller = make_rollout(golden=False)
        poisoner.write(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(0)),
            kind="drift")
        controller.poll_once()
        mirror_traffic(controller, 10)
        controller.poll_once()                   # rollback
        assert controller.poll_once() is False   # not re-staged
        assert controller.stage == STAGE_IDLE

    def test_erroring_canary_rolls_back(self, schema, make_rollout,
                                        swapper):
        pool, controller = make_rollout(golden=False)
        swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(123)))
        controller.poll_once()
        canary = [r for r in pool.replicas
                  if r.state == REPLICA_CANARY][0]

        def boom(*a, **k):
            raise RuntimeError("canary crashed")

        canary.service.predict = boom
        mirror_traffic(controller, 10)
        controller.poll_once()
        assert controller.manifest.data["rollbacks"] == 1
        assert controller.stage == STAGE_IDLE


class TestManifest:
    def test_save_load_roundtrip(self, tmp_path):
        manifest = RolloutManifest(tmp_path / "rollout.json")
        manifest.stage = STAGE_MIRRORING
        manifest.data["candidate"] = {"path": "x.npz", "epoch": 3}
        manifest.mark_bad("y.npz", 2, "psi too high")
        manifest.record("rolled_back", path="y.npz")
        manifest.save()
        loaded = RolloutManifest.load(tmp_path / "rollout.json")
        assert loaded.stage == STAGE_MIRRORING
        assert loaded.data["candidate"]["epoch"] == 3
        assert "y.npz" in loaded.bad_paths
        assert loaded.data["history"][-1]["event"] == "rolled_back"

    def test_garbage_manifest_file_resets_cleanly(self, tmp_path):
        path = tmp_path / "rollout.json"
        path.write_text("{not json")
        manifest = RolloutManifest.load(path)
        assert manifest.stage == STAGE_IDLE

    def test_manifest_written_atomically_at_each_stage(self, schema,
                                                       make_rollout,
                                                       swapper, manager):
        pool, controller = make_rollout()
        swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(123)))
        controller.poll_once()
        on_disk = json.loads(controller.manifest.path.read_text())
        assert on_disk["stage"] == STAGE_MIRRORING
        mirror_agreeing_traffic(pool, controller, 10)
        controller.poll_once()
        on_disk = json.loads(controller.manifest.path.read_text())
        assert on_disk["stage"] == STAGE_IDLE
        assert on_disk["promotions"] == 1


class TestRestartSafety:
    def test_initial_pick_skips_bad_and_inflight_candidates(
            self, schema, manager, swapper, tmp_path):
        good = swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(1)))
        candidate = swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(2)))
        manifest = RolloutManifest(tmp_path / "rollout.json")
        manifest.stage = STAGE_MIRRORING
        manifest.data["candidate"] = {"path": candidate, "epoch": 2}
        picked = select_initial_checkpoint(manager, manifest)
        assert picked is not None
        assert str(picked[1]) == good  # unpromoted candidate excluded
        manifest.mark_bad(good, 1, "rolled back")
        assert select_initial_checkpoint(manager, manifest) is None

    def test_promoting_candidate_is_eligible_at_boot(self, schema, manager,
                                                     swapper, tmp_path):
        candidate = swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(2)))
        manifest = RolloutManifest(tmp_path / "rollout.json")
        manifest.stage = STAGE_PROMOTING
        manifest.data["candidate"] = {"path": candidate, "epoch": 1}
        picked = select_initial_checkpoint(manager, manifest)
        assert picked is not None and str(picked[1]) == candidate

    def test_interrupted_mirroring_restages_from_scratch(self, schema,
                                                         make_rollout,
                                                         swapper, manager,
                                                         mem_sink):
        _, sink = mem_sink
        path = swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(123)))
        manifest_path = manager.directory / "rollout.json"
        crashed = RolloutManifest(manifest_path)
        crashed.stage = STAGE_MIRRORING
        crashed.data["candidate"] = {"path": path, "epoch": 1}
        crashed.data["canary_replica"] = 1
        crashed.save()
        pool, controller = make_rollout(manifest_path=manifest_path)
        assert controller.poll_once() is True    # resume → reset to idle
        assert controller.stage == STAGE_IDLE
        statuses = [e.payload["status"] for e in sink.of_type("rollout")]
        assert "resumed" in statuses
        assert controller.poll_once() is True    # fresh detect re-stages
        assert controller.stage == STAGE_MIRRORING

    def test_interrupted_promotion_finishes_at_boot(self, schema,
                                                    make_rollout, swapper,
                                                    manager):
        path = swapper.write_valid(LogisticRegression(
            schema.cardinalities, rng=np.random.default_rng(123)))
        manifest_path = manager.directory / "rollout.json"
        crashed = RolloutManifest(manifest_path)
        crashed.stage = STAGE_PROMOTING
        crashed.data["candidate"] = {"path": path, "epoch": 1}
        crashed.data["canary_replica"] = 2
        crashed.data["promoted"] = [0]           # crash mid-promote
        crashed.save()
        pool, controller = make_rollout(manifest_path=manifest_path)
        assert controller.poll_once() is True
        assert controller.stage == STAGE_IDLE
        assert controller.manifest.data["promotions"] == 1
        for replica in pool.replicas:
            assert replica.service.model_version == "epoch-00000001"
