"""Chaos under micro-batching: failure accounting and reload atomicity.

Two batch-specific contracts ride on top of the regular chaos suite:

* a batch-level scoring failure feeds the circuit breaker **exactly
  once** — batching must not multiply one fault into ``batch_size``
  breaker strikes;
* the model/version pair is snapshotted once per batch, so a hot reload
  landing mid-stream can never mix ``model_version`` values inside one
  batch's responses.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.models.shallow import LogisticRegression
from repro.resilience.checkpoint import CheckpointManager
from repro.serving import (
    BatchRequest,
    CircuitBreaker,
    HotReloader,
    PredictionService,
    STATUS_DEGRADED,
    STATUS_OK,
)
from repro.serving.faults import (CheckpointSwapper, FlakyModel, SlowModel,
                                  valid_requests)

pytestmark = [pytest.mark.serving, pytest.mark.resilience]


def batch_of(schema, count, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    return [BatchRequest(dict(request), request_id=f"r{i}")
            for i, request in enumerate(valid_requests(schema, count, rng))]


class TestBreakerAccounting:
    def test_one_failed_batch_trips_the_breaker_exactly_once(self, schema,
                                                             lr_model):
        """8 requests in one failing batch = 1 strike, not 8."""
        service = PredictionService(
            FlakyModel(lr_model, fail_first=100), schema, prior_ctr=0.3,
            breaker=CircuitBreaker(failure_threshold=3))
        responses = service.predict_batch(batch_of(schema, 8))
        assert all(r.status == STATUS_DEGRADED for r in responses)
        assert all(r.degraded_reason == "model_error" for r in responses)
        # Sequentially, 8 model errors would have blown the threshold-3
        # breaker wide open; one batch is one strike, so it is closed.
        assert service.breaker.state == CircuitBreaker.CLOSED
        second = service.predict_batch(batch_of(schema, 8))
        assert all(r.degraded_reason == "model_error" for r in second)
        assert service.breaker.state == CircuitBreaker.CLOSED
        third = service.predict_batch(batch_of(schema, 8))
        assert all(r.degraded_reason == "model_error" for r in third)
        # Third strike: now the circuit opens.
        assert service.breaker.state == CircuitBreaker.OPEN
        fourth = service.predict_batch(batch_of(schema, 4))
        assert all(r.degraded_reason == "breaker_open" for r in fourth)

    def test_successful_batch_closes_half_open_probe(self, schema, lr_model):
        """A half-open probe spends its slot on a whole batch."""
        fake_now = [0.0]
        flaky = FlakyModel(lr_model, fail_first=1)
        service = PredictionService(
            flaky, schema, prior_ctr=0.3,
            breaker=CircuitBreaker(failure_threshold=1, cooldown_s=1.0,
                                   clock=lambda: fake_now[0]))
        failed = service.predict_batch(batch_of(schema, 4))
        assert all(r.degraded_reason == "model_error" for r in failed)
        assert service.breaker.state == CircuitBreaker.OPEN
        # Cooldown elapses → next batch is the half-open probe; the
        # model has recovered, so the batch succeeds and the circuit
        # closes.
        fake_now[0] = 2.0
        probe = service.predict_batch(batch_of(schema, 4))
        assert all(r.status == STATUS_OK for r in probe)
        assert service.breaker.state == CircuitBreaker.CLOSED


class TestSlowModelBatching:
    def test_slow_model_pays_its_delay_once_per_batch(self, schema,
                                                      lr_model):
        delay = 0.05
        service = PredictionService(SlowModel(lr_model, delay_s=delay),
                                    schema, prior_ctr=0.3)
        started = time.monotonic()
        responses = service.predict_batch(batch_of(schema, 16))
        elapsed = time.monotonic() - started
        assert all(r.status == STATUS_OK for r in responses)
        # One coalesced scoring call: ~1 delay, nowhere near 16 of them.
        assert elapsed < delay * 8


class TestReloadAtomicity:
    def test_swap_during_scoring_never_splits_a_batch(self, schema,
                                                      lr_model):
        """A swap that lands *while a batch is scoring* takes effect only
        for the next batch — versions never mix within one."""
        service = PredictionService(lr_model, schema, prior_ctr=0.3)
        replacement = LogisticRegression(schema.cardinalities,
                                         rng=np.random.default_rng(5))

        original_predict = lr_model.predict_proba
        swapped = threading.Event()

        def swap_mid_scoring(batch):
            if not swapped.is_set():
                swapped.set()
                service.swap_model(replacement, "v2")
            return original_predict(batch)

        lr_model.predict_proba = swap_mid_scoring
        try:
            first = service.predict_batch(batch_of(schema, 8))
        finally:
            lr_model.predict_proba = original_predict
        assert swapped.is_set()
        # The batch that raced the swap is answered wholly by the model
        # snapshot it started with.
        assert {r.model_version for r in first} == {"initial"}
        assert all(r.status == STATUS_OK for r in first)
        second = service.predict_batch(batch_of(schema, 8))
        assert {r.model_version for r in second} == {"v2"}

    def test_checkpoint_swapper_stream_never_mixes_versions(self, schema,
                                                            lr_model,
                                                            tmp_path):
        """Hot reloads from a CheckpointSwapper interleaved with batches:
        every batch's responses carry exactly one model_version, and the
        promoted version eventually serves."""
        service = PredictionService(lr_model, schema, prior_ctr=0.3)
        manager = CheckpointManager(tmp_path)
        swapper = CheckpointSwapper(manager)
        reloader = HotReloader(
            service, manager,
            model_factory=lambda: LogisticRegression(
                schema.cardinalities, rng=np.random.default_rng(0)))

        seen_versions = []
        for step in range(6):
            if step in (2, 4):
                swapper.write_valid(lr_model)
                assert reloader.poll_once()
            responses = service.predict_batch(batch_of(schema, 8))
            versions = {r.model_version for r in responses}
            assert len(versions) == 1, "a batch mixed model versions"
            assert all(r.status == STATUS_OK for r in responses)
            seen_versions.append(versions.pop())
        assert seen_versions[0] == "initial"
        assert len(set(seen_versions)) == 3  # initial + two promotions

    def test_corrupt_checkpoint_mid_stream_keeps_serving(self, schema,
                                                         lr_model,
                                                         tmp_path):
        service = PredictionService(lr_model, schema, prior_ctr=0.3)
        manager = CheckpointManager(tmp_path)
        swapper = CheckpointSwapper(manager)
        reloader = HotReloader(
            service, manager,
            model_factory=lambda: LogisticRegression(
                schema.cardinalities, rng=np.random.default_rng(0)))
        swapper.write_corrupt()
        assert not reloader.poll_once()
        responses = service.predict_batch(batch_of(schema, 8))
        assert all(r.status == STATUS_OK for r in responses)
        assert {r.model_version for r in responses} == {"initial"}
