"""MicroBatcher flush-policy properties.

The four contracts (ISSUE 8): a batch never exceeds ``max_batch_size``;
the first request of a forming batch is never held past ``max_wait_ms``
(checked against an injectable clock, no sleeping); batches preserve
the queue's order (priority-descending, FIFO within a priority); and
after ``close()`` every queued request still comes out — zero drops.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving import BoundedRequestQueue, MicroBatcher

pytestmark = pytest.mark.serving


class FakeClock:
    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class ScriptedQueue:
    """Duck-typed queue whose entries become visible at scripted times.

    ``get(timeout)`` behaves like the real queue against the fake clock:
    it returns the earliest not-yet-taken entry whose arrival time is
    within ``now + timeout`` (advancing the clock to the arrival), or
    advances the clock by the full timeout and returns ``None``.
    """

    def __init__(self, clock, arrivals):
        self.clock = clock
        # [(arrival_time, item)] sorted by arrival.
        self.arrivals = sorted(arrivals, key=lambda pair: pair[0])
        self.take_times = {}  # item -> clock time it was handed out

    def _take(self):
        _arrival, item = self.arrivals.pop(0)
        self.take_times[item] = self.clock.now
        return item

    def get(self, timeout=None):
        if not self.arrivals:
            if timeout is not None:
                self.clock.advance(timeout)
            return None
        arrival, _item = self.arrivals[0]
        if arrival <= self.clock.now:
            return self._take()
        if timeout is None or arrival <= self.clock.now + timeout:
            self.clock.advance(arrival - self.clock.now)
            return self._take()
        self.clock.advance(timeout)
        return None


class TestConstruction:
    def test_rejects_bad_knobs(self):
        queue = BoundedRequestQueue(max_depth=4)
        with pytest.raises(ValueError):
            MicroBatcher(queue, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(queue, max_batch_size=4, max_wait_ms=-1.0)


class TestSizeBound:
    @given(n_items=st.integers(0, 200), max_batch=st.integers(1, 33))
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_max_batch_size_and_never_drops(self, n_items,
                                                          max_batch):
        queue = BoundedRequestQueue(max_depth=max(n_items, 1))
        for i in range(n_items):
            assert queue.put(i)
        queue.close()
        batcher = MicroBatcher(queue, max_batch_size=max_batch,
                               max_wait_ms=50.0, clock=FakeClock())
        drained = []
        while True:
            batch = batcher.next_batch(timeout=0)
            if batch is None:
                break
            assert 1 <= len(batch) <= max_batch
            drained.extend(batch)
        assert drained == list(range(n_items))  # zero drops, FIFO order


class TestWaitBound:
    @given(arrivals=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=40),
           max_batch=st.integers(1, 8),
           max_wait_ms=st.floats(0.0, 100.0))
    @settings(max_examples=80, deadline=None)
    def test_first_request_never_held_past_max_wait(self, arrivals,
                                                    max_batch, max_wait_ms):
        clock = FakeClock()
        scripted = ScriptedQueue(
            clock, [(t, i) for i, t in enumerate(sorted(arrivals))])
        batcher = MicroBatcher(scripted, max_batch_size=max_batch,
                               max_wait_ms=max_wait_ms, clock=clock)
        total = len(arrivals)
        drained = []
        while len(drained) < total:
            batch = batcher.next_batch(timeout=10.0)
            assert batch is not None  # everything arrives within 1s
            flushed_at = clock.now
            first_taken_at = scripted.take_times[batch[0]]
            # The first entry of a batch is never held past max_wait_ms:
            # the flush moment is at most its take time plus the budget.
            assert flushed_at <= first_taken_at + max_wait_ms / 1e3 + 1e-12
            assert 1 <= len(batch) <= max_batch
            drained.extend(batch)
        assert sorted(drained) == list(range(total))

    def test_flush_on_deadline_exact(self):
        """Deadline flush happens at first-take + max_wait, not later."""
        clock = FakeClock()
        scripted = ScriptedQueue(clock, [(0.0, "a"), (5.0, "b")])
        batcher = MicroBatcher(scripted, max_batch_size=4, max_wait_ms=20.0,
                               clock=clock)
        batch = batcher.next_batch(timeout=1.0)
        assert batch == ["a"]
        # "b" arrives at t=5s, far past the 20ms budget: the batcher gave
        # up waiting at exactly t=0.02s.
        assert clock.now == pytest.approx(0.02)
        assert batcher.next_batch(timeout=10.0) == ["b"]

    def test_zero_wait_coalesces_only_whats_queued(self):
        clock = FakeClock()
        queue = BoundedRequestQueue(max_depth=16)
        for i in range(3):
            queue.put(i)
        batcher = MicroBatcher(queue, max_batch_size=8, max_wait_ms=0.0,
                               clock=clock)
        assert batcher.next_batch(timeout=0) == [0, 1, 2]
        assert clock.now == 0.0  # no waiting at all

    def test_batch_size_one_never_waits(self):
        clock = FakeClock()
        scripted = ScriptedQueue(clock, [(0.0, "a"), (0.0, "b")])
        batcher = MicroBatcher(scripted, max_batch_size=1,
                               max_wait_ms=1000.0, clock=clock)
        assert batcher.next_batch(timeout=1.0) == ["a"]
        assert clock.now == 0.0


class TestPriorityOrder:
    def test_preserves_queue_priority_order(self):
        queue = BoundedRequestQueue(max_depth=16)
        queue.put("low-1", priority=0)
        queue.put("high-1", priority=9)
        queue.put("mid-1", priority=5)
        queue.put("high-2", priority=9)
        queue.put("low-2", priority=0)
        queue.close()
        batcher = MicroBatcher(queue, max_batch_size=8, max_wait_ms=0.0,
                               clock=FakeClock())
        batch = batcher.next_batch(timeout=0)
        # Priority descending, FIFO within a priority — exactly the
        # order sequential workers would have drained.
        assert batch == ["high-1", "high-2", "mid-1", "low-1", "low-2"]

    @given(entries=st.lists(st.integers(0, 9), min_size=1, max_size=64),
           max_batch=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_concatenated_batches_equal_sequential_drain(self, entries,
                                                         max_batch):
        def fill(queue):
            for i, priority in enumerate(entries):
                queue.put((priority, i), priority=priority)
            queue.close()

        reference_queue = BoundedRequestQueue(max_depth=len(entries))
        fill(reference_queue)
        reference = []
        while True:
            item = reference_queue.get(timeout=0)
            if item is None:
                break
            reference.append(item)

        batched_queue = BoundedRequestQueue(max_depth=len(entries))
        fill(batched_queue)
        batcher = MicroBatcher(batched_queue, max_batch_size=max_batch,
                               max_wait_ms=10.0, clock=FakeClock())
        drained = []
        while True:
            batch = batcher.next_batch(timeout=0)
            if batch is None:
                break
            drained.extend(batch)
        assert drained == reference


class TestShutdownDrain:
    def test_close_drains_everything_then_signals_none(self):
        queue = BoundedRequestQueue(max_depth=64)
        for i in range(10):
            queue.put(i)
        queue.close()
        batcher = MicroBatcher(queue, max_batch_size=4, max_wait_ms=100.0,
                               clock=FakeClock())
        batches = []
        while True:
            batch = batcher.next_batch(timeout=5.0)
            if batch is None:
                break
            batches.append(batch)
        assert [len(b) for b in batches] == [4, 4, 2]
        assert sum(batches, []) == list(range(10))

    def test_timeout_with_empty_open_queue_returns_none(self):
        queue = BoundedRequestQueue(max_depth=4)
        batcher = MicroBatcher(queue, max_batch_size=4, max_wait_ms=5.0)
        assert batcher.next_batch(timeout=0.01) is None
