"""Differential harness: batched scoring == sequential scoring, bitwise.

The micro-batching tentpole's headline guarantee (docs/serving.md):
``PredictionService.predict_batch`` answers every request with exactly
the response sequential ``predict`` calls would give — ``status``,
``served_by``, ``degraded_reason``, ``error`` payloads equal, and
``probability`` equal *bitwise* (compared through ``struct.pack('d')``,
not a tolerance) — for every servable model family, at every batch size
1–32, for valid / invalid / missing-field request mixes and for the
degraded states (breaker open, model unavailable, deadline, reload
mid-stream).

Scoring state is deterministic, so the comparison is exact: the only
service state the two paths mutate differently is failure *accounting*
(breaker counts per batch, latency EWMA one observation per batch),
which never feeds back into a response in these scenarios.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.schema import make_schema
from repro.models.shallow import LogisticRegression
from repro.serving import (
    BatchRequest,
    CircuitBreaker,
    PredictionService,
    SERVABLE_MODELS,
    STATUS_DEGRADED,
    STATUS_INVALID,
    STATUS_OK,
    build_serving_stack,
)

pytestmark = pytest.mark.serving

_STACKS = {}


def family_stack(name):
    """One serving stack per model family, built once per process."""
    if name not in _STACKS:
        _STACKS[name] = build_serving_stack(name, "criteo", "quick",
                                            samples=300)
    return _STACKS[name]


def bits(probability):
    """Bit pattern of a float64 — bitwise comparison, not a tolerance."""
    return (None if probability is None
            else struct.pack("<d", probability))


def assert_identical(sequential, batched, context=""):
    """Field-by-field equality; probability compared bitwise."""
    assert len(sequential) == len(batched), context
    for i, (a, b) in enumerate(zip(sequential, batched)):
        where = f"{context} request {i}"
        assert a.status == b.status, where
        assert a.served_by == b.served_by, where
        assert a.degraded_reason == b.degraded_reason, where
        assert a.error == b.error, where
        assert a.model_version == b.model_version, where
        assert a.request_id == b.request_id, where
        assert bits(a.probability) == bits(b.probability), (
            f"{where}: {a.probability!r} != {b.probability!r} bitwise")


def mixed_stream(schema, rng, count):
    """Valid / missing-field / invalid request mix over ``schema``.

    Valid ids stay tiny so they are in-vocabulary for the *model's*
    train-split tables, not just the schema (full-split cardinalities
    can exceed what the embedding tables saw — those requests would
    degrade, which is a separate scenario below).
    """
    names = schema.field_names
    stream = []
    for i in range(count):
        kind = rng.integers(0, 5)
        request = {name: int(rng.integers(0, 3)) for name in names}
        if kind == 1 and len(names) > 1:  # missing fields fold to OOV
            for name in list(names)[: int(rng.integers(1, len(names)))]:
                del request[name]
        elif kind == 2:  # unknown field → invalid
            request["no_such_field"] = 1
        elif kind == 3:  # bad value type → invalid
            request[names[int(rng.integers(0, len(names)))]] = "not-an-id"
        stream.append(request)
    return stream


def run_batched(service, stream, batch_size):
    responses = []
    for start in range(0, len(stream), batch_size):
        chunk = [BatchRequest(dict(r), request_id=f"r{start + j}")
                 for j, r in enumerate(stream[start:start + batch_size])]
        responses.extend(service.predict_batch(chunk))
    return responses


def run_sequential(service, stream):
    return [service.predict(dict(r), request_id=f"r{i}")
            for i, r in enumerate(stream)]


class TestEveryModelFamily:
    @pytest.mark.parametrize("name", SERVABLE_MODELS)
    def test_batched_equals_sequential_bitwise(self, name):
        service = family_stack(name).service
        rng = np.random.default_rng(11)
        stream = mixed_stream(service.schema, rng, 32)
        sequential = run_sequential(service, stream)
        assert STATUS_OK in {r.status for r in sequential}, (
            "stream must exercise genuine full-model scoring")
        for batch_size in range(1, 33):
            batched = run_batched(service, stream, batch_size)
            assert_identical(sequential, batched,
                             f"{name} batch_size={batch_size}")


class TestHypothesisStreams:
    """Random streams over a small LR service, every batch size 1–32."""

    @staticmethod
    def _service(schema):
        return PredictionService(
            LogisticRegression(schema.cardinalities,
                               rng=np.random.default_rng(0)),
            schema, prior_ctr=0.3)

    @given(seed=st.integers(0, 2**32 - 1),
           batch_size=st.integers(1, 32),
           count=st.integers(1, 48))
    @settings(max_examples=60, deadline=None)
    def test_random_mixed_streams(self, seed, batch_size, count):
        schema = make_schema([8, 6, 10], positive_ratio=0.3)
        service = self._service(schema)
        stream = mixed_stream(schema, np.random.default_rng(seed), count)
        sequential = run_sequential(service, stream)
        batched = run_batched(service, stream, batch_size)
        assert_identical(sequential, batched,
                         f"seed={seed} batch_size={batch_size}")


class TestDegradedStates:
    """Deterministic degraded states answer identically both ways."""

    def _schema(self):
        return make_schema([8, 6, 10], positive_ratio=0.3)

    def _stream(self, schema, count=17):
        return mixed_stream(schema, np.random.default_rng(3), count)

    def test_model_unavailable(self):
        schema = self._schema()
        service = PredictionService(None, schema, prior_ctr=0.3)
        stream = self._stream(schema)
        sequential = run_sequential(service, stream)
        assert {r.degraded_reason for r in sequential
                if r.status == STATUS_DEGRADED} == {"model_unavailable"}
        for batch_size in (1, 2, 5, 17, 32):
            assert_identical(sequential, run_batched(service, stream,
                                                     batch_size),
                             f"model_unavailable batch={batch_size}")

    def test_breaker_open(self):
        schema = self._schema()
        model = LogisticRegression(schema.cardinalities,
                                   rng=np.random.default_rng(0))
        service = PredictionService(
            model, schema, prior_ctr=0.3,
            breaker=CircuitBreaker(failure_threshold=1, cooldown_s=3600.0))
        service.breaker.record_failure()  # latch open for the whole test
        assert not service.breaker.allow()
        stream = self._stream(schema)
        sequential = run_sequential(service, stream)
        reasons = {r.degraded_reason for r in sequential
                   if r.status == STATUS_DEGRADED}
        assert reasons == {"breaker_open"}
        # Main-effects fallback answers must match bitwise too.
        assert any(r.served_by == "main_effects" for r in sequential)
        for batch_size in (1, 3, 17, 32):
            assert_identical(sequential, run_batched(service, stream,
                                                     batch_size),
                             f"breaker_open batch={batch_size}")

    def test_deadline_exhausted_budget(self):
        """A deadline the EWMA says is unaffordable degrades both ways."""
        schema = self._schema()

        def make():
            service = PredictionService(
                LogisticRegression(schema.cardinalities,
                                   rng=np.random.default_rng(0)),
                schema, prior_ctr=0.3, deadline_s=1e-9,
                breaker=CircuitBreaker(failure_threshold=10**6))
            service.latency.observe(10.0)  # estimate >> budget
            return service

        stream = self._stream(schema)
        sequential = run_sequential(make(), stream)
        assert {r.degraded_reason for r in sequential
                if r.status == STATUS_DEGRADED} == {"deadline"}
        for batch_size in (1, 4, 17):
            assert_identical(sequential,
                             run_batched(make(), stream, batch_size),
                             f"deadline batch={batch_size}")

    def test_reload_mid_stream(self):
        """A swap between batches changes versions; answers still match a
        sequential run with the swap at the same stream offset."""
        schema = self._schema()

        def make():
            return PredictionService(
                LogisticRegression(schema.cardinalities,
                                   rng=np.random.default_rng(0)),
                schema, prior_ctr=0.3)

        new_model = LogisticRegression(schema.cardinalities,
                                       rng=np.random.default_rng(9))
        stream = self._stream(schema, count=24)
        swap_at = 12

        seq_service = make()
        sequential = []
        for i, request in enumerate(stream):
            if i == swap_at:
                seq_service.swap_model(new_model, "v2")
            sequential.append(seq_service.predict(dict(request),
                                                  request_id=f"r{i}"))

        for batch_size in (1, 2, 3, 4, 6, 12):
            assert swap_at % batch_size == 0
            batch_service = make()
            batched = []
            for start in range(0, len(stream), batch_size):
                if start == swap_at:
                    batch_service.swap_model(new_model, "v2")
                chunk = [BatchRequest(dict(r), request_id=f"r{start + j}")
                         for j, r in enumerate(
                             stream[start:start + batch_size])]
                batched.extend(batch_service.predict_batch(chunk))
            assert_identical(sequential, batched,
                             f"reload batch={batch_size}")
        versions = {r.model_version for r in sequential}
        assert versions == {"initial", "v2"}


class TestQuarantine:
    def test_one_bad_row_never_poisons_the_batch(self):
        schema = make_schema([8, 6, 10], positive_ratio=0.3)
        service = PredictionService(
            LogisticRegression(schema.cardinalities,
                               rng=np.random.default_rng(0)),
            schema, prior_ctr=0.3)
        names = schema.field_names
        good = {name: 1 for name in names}
        bad = {"no_such_field": 1}
        responses = service.predict_batch(
            [BatchRequest(dict(good), request_id="a"),
             BatchRequest(dict(bad), request_id="b"),
             BatchRequest(dict(good), request_id="c")])
        assert [r.status for r in responses] == [STATUS_OK, STATUS_INVALID,
                                                 STATUS_OK]
        assert responses[1].error["code"] == "invalid_request"
        assert "no_such_field" in responses[1].error["field_errors"]
        assert bits(responses[0].probability) == bits(
            responses[2].probability)
