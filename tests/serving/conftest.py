"""Shared serving fixtures: a small schema, an LR model, a service maker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.schema import make_schema
from repro.models.shallow import LogisticRegression
from repro.obs.events import EventBus, MemorySink
from repro.serving import PredictionService


@pytest.fixture
def schema():
    return make_schema([8, 6, 10], positive_ratio=0.3)


@pytest.fixture
def lr_model(schema):
    return LogisticRegression(schema.cardinalities,
                              rng=np.random.default_rng(0))


@pytest.fixture
def mem_sink():
    """(bus, sink) pair capturing every emitted event in memory."""
    bus = EventBus()
    sink = bus.add_sink(MemorySink())
    return bus, sink


@pytest.fixture
def make_service(schema, lr_model, mem_sink):
    """Factory for services over the small LR model with a memory bus."""
    bus, _ = mem_sink

    def _make(model="lr", **kwargs):
        kwargs.setdefault("prior_ctr", 0.3)
        kwargs.setdefault("bus", bus)
        return PredictionService(lr_model if model == "lr" else model,
                                 schema, **kwargs)

    return _make
