"""Public API surface: __all__ exports resolve and stay importable.

Guards against the most common packaging regression — a name listed in
``__all__`` that no longer exists, or a module dropped from the package
root — which unit tests of individual modules would not catch.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.data",
    "repro.models",
    "repro.core",
    "repro.training",
    "repro.analysis",
    "repro.experiments",
    "repro.serving",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), package
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_no_duplicate_exports(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__)), package

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_io_and_cli_importable(self):
        import repro.cli
        import repro.io

        assert callable(repro.cli.main)
        assert callable(repro.io.save_checkpoint)


class TestDocstrings:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_every_package_documented(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, package

    def test_key_classes_documented(self):
        from repro.core import OptInterModel
        from repro.data import CTRDataset, CTRPipeline
        from repro.nn import Tensor
        from repro.training import Trainer

        for cls in (Tensor, CTRDataset, CTRPipeline, OptInterModel, Trainer):
            assert cls.__doc__ and len(cls.__doc__.strip()) > 20, cls

    def test_public_functions_documented(self):
        from repro.core import run_optinter, search_optinter
        from repro.analysis import mutual_information
        from repro.experiments import run_table5

        for fn in (run_optinter, search_optinter, mutual_information,
                   run_table5):
            assert fn.__doc__ and len(fn.__doc__.strip()) > 10, fn
