"""Search algorithms: joint (Alg. 1), bi-level, random."""

import numpy as np
import pytest

from repro.core import (
    Architecture,
    SearchConfig,
    random_architecture,
    search_bilevel,
    search_optinter,
)


def _config(**overrides):
    base = dict(embed_dim=4, cross_embed_dim=2, hidden_dims=(8,),
                epochs=2, batch_size=128, lr=5e-3, lr_arch=2e-2,
                seed=0)
    base.update(overrides)
    return SearchConfig(**base)


class TestJointSearch:
    def test_returns_valid_architecture(self, tiny_splits):
        train, val, _ = tiny_splits
        result = search_optinter(train, val, _config())
        assert result.architecture.num_pairs == train.num_pairs
        assert result.alpha.shape == (train.num_pairs, 3)
        assert len(result.history) == 2

    def test_alpha_moves_from_init(self, tiny_splits):
        train, val, _ = tiny_splits
        result = search_optinter(train, val, _config())
        assert np.abs(result.alpha).sum() > 0  # init was all zeros

    def test_history_records_validation(self, tiny_splits):
        train, val, _ = tiny_splits
        result = search_optinter(train, val, _config())
        assert result.history.last.val_auc is not None

    def test_works_without_validation(self, tiny_splits):
        train, _, _ = tiny_splits
        result = search_optinter(train, None, _config(epochs=1))
        assert result.history.last.val_auc is None

    def test_deterministic_given_seed(self, tiny_splits):
        train, val, _ = tiny_splits
        a = search_optinter(train, val, _config())
        b = search_optinter(train, val, _config())
        np.testing.assert_array_equal(a.alpha, b.alpha)

    def test_requires_cross_features(self, tiny_splits):
        train, val, _ = tiny_splits
        stripped = train.subset(np.arange(len(train)))
        stripped.x_cross = None
        with pytest.raises(ValueError):
            search_optinter(stripped, val, _config())

    def test_temperature_annealing_applied(self, tiny_splits):
        train, val, _ = tiny_splits
        config = _config(epochs=2, temperature_start=2.0, temperature_end=0.5)
        result = search_optinter(train, val, config)
        # After the final epoch the block sits at the end temperature.
        assert result.model.combination.temperature == pytest.approx(0.5)

    def test_finds_planted_memorizable_pair(self, tiny_splits, tiny_truth):
        """The search must not assign 'naive' to the planted strong pair."""
        from repro.core import Method
        from repro.data import PairRole

        train, val, _ = tiny_splits
        result = search_optinter(train, val, _config(epochs=3))
        planted = tiny_truth.pairs_with_role(PairRole.MEMORIZABLE)[0]
        assert result.architecture[planted] is not Method.NAIVE


class TestBilevelSearch:
    def test_returns_valid_architecture(self, tiny_splits):
        train, val, _ = tiny_splits
        result = search_bilevel(train, val, _config())
        assert result.architecture.num_pairs == train.num_pairs

    def test_requires_validation_set(self, tiny_splits):
        train, _, _ = tiny_splits
        with pytest.raises(ValueError):
            search_bilevel(train, None, _config())

    def test_alpha_differs_from_joint(self, tiny_splits):
        train, val, _ = tiny_splits
        joint = search_optinter(train, val, _config())
        bilevel = search_bilevel(train, val, _config())
        assert not np.allclose(joint.alpha, bilevel.alpha)


class TestRandomArchitecture:
    def test_valid(self, rng):
        arch = random_architecture(30, rng)
        assert isinstance(arch, Architecture)
        assert arch.num_pairs == 30

    def test_varies_across_draws(self):
        rng = np.random.default_rng(0)
        a = random_architecture(40, rng)
        b = random_architecture(40, rng)
        assert list(a) != list(b)
