"""Architecture: constructors, counts, decode, serialisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Architecture, Method, METHOD_ORDER


class TestConstructors:
    def test_uniform_architectures(self):
        assert Architecture.all_memorize(5).counts() == [5, 0, 0]
        assert Architecture.all_factorize(5).counts() == [0, 5, 0]
        assert Architecture.all_naive(5).counts() == [0, 0, 5]

    def test_random_covers_all_pairs(self, rng):
        arch = Architecture.random(50, rng)
        assert arch.num_pairs == 50
        assert sum(arch.counts()) == 50

    def test_random_mixes_methods(self):
        arch = Architecture.random(200, np.random.default_rng(0))
        assert all(c > 0 for c in arch.counts())

    def test_from_assignment(self):
        arch = Architecture.from_assignment(["memorize", "naive"])
        assert arch[0] is Method.MEMORIZE
        assert arch[1] is Method.NAIVE

    def test_type_validation(self):
        with pytest.raises(TypeError):
            Architecture(methods=("memorize",))


class TestFromAlpha:
    def test_argmax_decode(self):
        alpha = np.array([[3.0, 1.0, 0.0],
                          [0.0, 2.0, 1.0],
                          [0.0, 1.0, 5.0]])
        arch = Architecture.from_alpha(alpha)
        assert list(arch) == [Method.MEMORIZE, Method.FACTORIZE, Method.NAIVE]

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            Architecture.from_alpha(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            Architecture.from_alpha(np.zeros(3))


class TestQueries:
    def test_pairs_with(self):
        arch = Architecture.from_assignment(
            ["memorize", "naive", "memorize", "factorize"])
        assert arch.pairs_with(Method.MEMORIZE) == [0, 2]
        assert arch.pairs_with(Method.FACTORIZE) == [3]
        assert arch.pairs_with(Method.NAIVE) == [1]

    def test_counts_order_matches_paper(self):
        arch = Architecture.from_assignment(
            ["memorize", "memorize", "factorize", "naive"])
        assert arch.counts() == [2, 1, 1]

    def test_summary(self):
        arch = Architecture.all_memorize(3)
        assert arch.summary() == {"memorize": 3, "factorize": 0, "naive": 0}


class TestSerialisation:
    def test_json_roundtrip(self, rng):
        arch = Architecture.random(20, rng)
        restored = Architecture.from_json(arch.to_json())
        assert list(restored) == list(arch)

    @given(st.lists(st.sampled_from([m.value for m in METHOD_ORDER]),
                    min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, names):
        arch = Architecture.from_assignment(names)
        assert Architecture.from_json(arch.to_json()) == arch
        assert sum(arch.counts()) == len(names)
