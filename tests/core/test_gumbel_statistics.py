"""Statistical properties of the Gumbel-softmax selection (Eqs. 16-17)."""

import numpy as np
import pytest

from repro.core import CombinationBlock, sample_gumbel


class TestGumbelArgmaxDistribution:
    def test_argmax_frequencies_match_softmax(self):
        """The Gumbel-max trick samples the categorical softmax(α) exactly:
        argmax_k (α_k + g_k) ~ Categorical(softmax(α))."""
        rng = np.random.default_rng(0)
        alpha = np.array([1.0, 0.0, -1.0])
        target = np.exp(alpha) / np.exp(alpha).sum()
        draws = 40_000
        noise = sample_gumbel((draws, 3), rng)
        picks = (alpha + noise).argmax(axis=1)
        freqs = np.bincount(picks, minlength=3) / draws
        np.testing.assert_allclose(freqs, target, atol=0.01)

    def test_uniform_alpha_uniform_picks(self):
        rng = np.random.default_rng(1)
        noise = sample_gumbel((30_000, 3), rng)
        freqs = np.bincount(noise.argmax(axis=1), minlength=3) / 30_000
        np.testing.assert_allclose(freqs, 1 / 3, atol=0.01)


class TestRelaxationSharpness:
    def test_weights_concentrate_as_temperature_drops(self, rng):
        """E[max_k w_k] increases as τ decreases (harder selections)."""
        block = CombinationBlock(200, rng=rng)
        block.train()
        block.alpha.data = rng.normal(size=(200, 3))

        def mean_max_weight(tau):
            block.set_temperature(tau)
            w = block.method_weights().numpy()
            return w.max(axis=-1).mean()

        sharp = mean_max_weight(0.1)
        medium = mean_max_weight(0.7)
        soft = mean_max_weight(5.0)
        assert sharp > medium > soft

    def test_high_temperature_approaches_uniform(self, rng):
        block = CombinationBlock(100, rng=rng)
        block.train()
        block.alpha.data = rng.normal(size=(100, 3))
        block.set_temperature(200.0)
        w = block.method_weights().numpy()
        np.testing.assert_allclose(w, 1 / 3, atol=0.05)

    def test_expected_weights_track_selection_probabilities(self, rng):
        """Averaged over many samples, the soft weights rank methods in the
        same order as the true selection probabilities."""
        block = CombinationBlock(1, rng=np.random.default_rng(0))
        block.train()
        block.alpha.data = np.array([[1.5, 0.0, -1.5]])
        block.set_temperature(1.0)
        total = np.zeros(3)
        for _ in range(2000):
            total += block.method_weights().numpy()[0]
        mean = total / 2000
        assert mean[0] > mean[1] > mean[2]


class TestSearchStageIntegration:
    def test_eval_probabilities_stable_under_resampling(self, rng):
        """Eval-mode probabilities ignore noise entirely."""
        block = CombinationBlock(10, rng=rng)
        block.alpha.data = rng.normal(size=(10, 3))
        block.eval()
        a = block.probabilities()
        b = block.probabilities()
        np.testing.assert_array_equal(a, b)

    def test_argmax_decode_invariant_to_temperature(self, rng):
        """Eq. 19's decode depends on α only, not on τ."""
        block = CombinationBlock(20, rng=rng)
        block.alpha.data = rng.normal(size=(20, 3))
        block.set_temperature(0.1)
        cold = block.derive_architecture()
        block.set_temperature(10.0)
        hot = block.derive_architecture()
        assert cold == hot
