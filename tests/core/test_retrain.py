"""Re-train stage (Alg. 2) and the full two-stage pipeline."""

import numpy as np
import pytest

from repro.core import (
    Architecture,
    RetrainConfig,
    SearchConfig,
    build_fixed_model,
    retrain,
    run_optinter,
)
from repro.training import evaluate_model


def _retrain_config(**overrides):
    base = dict(embed_dim=4, cross_embed_dim=2, hidden_dims=(8,),
                epochs=2, batch_size=128, lr=5e-3, seed=1)
    base.update(overrides)
    return RetrainConfig(**base)


def _search_config(**overrides):
    base = dict(embed_dim=4, cross_embed_dim=2, hidden_dims=(8,),
                epochs=1, batch_size=128, lr=5e-3, seed=0)
    base.update(overrides)
    return SearchConfig(**base)


class TestBuildFixedModel:
    def test_builds_for_any_architecture(self, tiny_dataset, rng):
        arch = Architecture.random(tiny_dataset.num_pairs, rng)
        model = build_fixed_model(arch, tiny_dataset, _retrain_config())
        assert model.architecture is arch

    def test_memorizing_arch_needs_cross_features(self, tiny_dataset):
        from repro.data import CTRDataset

        no_cross = CTRDataset(schema=tiny_dataset.schema, x=tiny_dataset.x,
                              y=tiny_dataset.y,
                              cardinalities=tiny_dataset.cardinalities)
        arch = Architecture.all_memorize(tiny_dataset.num_pairs)
        with pytest.raises(ValueError):
            build_fixed_model(arch, no_cross, _retrain_config())


class TestRetrain:
    def test_trains_and_returns_history(self, tiny_splits, rng):
        train, val, _ = tiny_splits
        arch = Architecture.random(train.num_pairs, rng)
        model, history = retrain(arch, train, val, _retrain_config())
        assert len(history) >= 1
        assert history.last.val_auc is not None

    def test_fresh_weights_each_call(self, tiny_splits, rng):
        """Re-train must start from scratch: same config, same result."""
        train, val, _ = tiny_splits
        arch = Architecture.all_naive(train.num_pairs)
        model_a, _ = retrain(arch, train, val, _retrain_config())
        model_b, _ = retrain(arch, train, val, _retrain_config())
        state_a = model_a.state_dict()
        state_b = model_b.state_dict()
        for key in state_a:
            np.testing.assert_array_equal(state_a[key], state_b[key])

    def test_early_stopping_restores_best(self, tiny_splits, rng):
        train, val, test = tiny_splits
        arch = Architecture.all_naive(train.num_pairs)
        config = _retrain_config(epochs=6, patience=2)
        model, history = retrain(arch, train, val, config)
        best = history.best_epoch("val_auc")
        # The restored model's val AUC equals the best recorded epoch.
        metrics = evaluate_model(model, val)
        np.testing.assert_allclose(metrics["auc"], best.val_auc, rtol=1e-9)


class TestRunOptInter:
    def test_full_pipeline(self, tiny_splits):
        train, val, test = tiny_splits
        result = run_optinter(train, val, _search_config(),
                              _retrain_config())
        assert result.architecture.num_pairs == train.num_pairs
        assert result.search is not None
        assert sum(result.selection_counts) == train.num_pairs
        metrics = evaluate_model(result.model, test)
        assert 0.0 <= metrics["auc"] <= 1.0

    def test_default_retrain_config_derived_from_search(self, tiny_splits):
        train, val, _ = tiny_splits
        result = run_optinter(train, val, _search_config())
        # Retrained model must use the search dims.
        assert result.model.embed_dim == 4
        assert result.model.cross_embed_dim == 2

    def test_retrained_model_is_fixed_mode(self, tiny_splits):
        train, val, _ = tiny_splits
        result = run_optinter(train, val, _search_config())
        assert not result.model.is_search_mode
        assert result.model.architecture == result.architecture
