"""Search-stage observability: α snapshots reconstruct the selection."""

import numpy as np

from repro.core import Architecture, SearchConfig, search_bilevel, search_optinter
from repro.core.architecture import METHOD_ORDER
from repro.obs import EventBus, MemorySink, read_trace


def _config(**overrides):
    base = dict(embed_dim=4, cross_embed_dim=2, hidden_dims=(8,),
                epochs=2, batch_size=128, lr=5e-3, lr_arch=2e-2,
                temperature_start=1.0, temperature_end=0.4, seed=0)
    base.update(overrides)
    return SearchConfig(**base)


class TestSearchAlphaEvents:
    def test_one_snapshot_per_epoch(self, tiny_splits):
        train, val, _ = tiny_splits
        sink = MemorySink()
        search_optinter(train, val, _config(), bus=EventBus([sink]))
        snapshots = sink.of_type("search_alpha")
        assert len(snapshots) == 2
        assert [e.payload["epoch"] for e in snapshots] == [0, 1]
        assert all(e.payload["stage"] == "search" for e in snapshots)

    def test_final_snapshot_matches_search_result(self, tiny_splits):
        """Acceptance: the per-pair selection is reconstructable from the
        trace alone and equals the returned ``SearchResult``."""
        train, val, _ = tiny_splits
        sink = MemorySink()
        result = search_optinter(train, val, _config(), bus=EventBus([sink]))
        final = sink.of_type("search_alpha")[-1].payload
        assert final["methods"] == [m.value for m in result.architecture]
        assert final["counts"] == result.architecture.counts()
        np.testing.assert_allclose(np.asarray(final["alpha"]), result.alpha)
        rebuilt = Architecture.from_alpha(np.asarray(final["alpha"]))
        assert rebuilt == result.architecture

    def test_snapshot_shapes_and_probabilities(self, tiny_splits):
        train, val, _ = tiny_splits
        sink = MemorySink()
        search_optinter(train, val, _config(epochs=1), bus=EventBus([sink]))
        payload = sink.of_type("search_alpha")[0].payload
        num_pairs = train.num_pairs
        alpha = np.asarray(payload["alpha"])
        probs = np.asarray(payload["probabilities"])
        assert alpha.shape == (num_pairs, len(METHOD_ORDER))
        assert probs.shape == (num_pairs, len(METHOD_ORDER))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)
        assert len(payload["methods"]) == num_pairs

    def test_temperature_annealing_visible_in_trace(self, tiny_splits):
        train, val, _ = tiny_splits
        sink = MemorySink()
        search_optinter(train, val, _config(epochs=3), bus=EventBus([sink]))
        temps = [e.payload["temperature"] for e in sink.of_type("search_alpha")]
        assert temps[0] == 1.0
        assert temps[-1] == 0.4
        assert temps == sorted(temps, reverse=True)

    def test_epoch_end_events_accompany_snapshots(self, tiny_splits):
        train, val, _ = tiny_splits
        sink = MemorySink()
        result = search_optinter(train, val, _config(), bus=EventBus([sink]))
        epochs = sink.of_type("epoch_end")
        assert len(epochs) == len(result.history)
        assert epochs[0].payload["train_loss"] == result.history.records[0].train_loss

    def test_search_without_bus_emits_nothing(self, tiny_splits):
        train, val, _ = tiny_splits
        result = search_optinter(train, val, _config())
        assert result.architecture.num_pairs == train.num_pairs

    def test_events_unchanged_by_observation(self, tiny_splits):
        """Attaching a bus must not perturb the search trajectory."""
        train, val, _ = tiny_splits
        plain = search_optinter(train, val, _config())
        observed = search_optinter(train, val, _config(),
                                   bus=EventBus([MemorySink()]))
        np.testing.assert_array_equal(plain.alpha, observed.alpha)
        assert plain.architecture == observed.architecture

    def test_jsonl_trace_round_trip(self, tiny_splits, tmp_path):
        train, val, _ = tiny_splits
        path = tmp_path / "search.jsonl"
        with EventBus.to_jsonl(path) as bus:
            result = search_optinter(train, val, _config(), bus=bus)
        events = read_trace(path, "search_alpha")
        assert len(events) == 2
        assert events[-1].payload["methods"] == [m.value
                                                 for m in result.architecture]

    def test_bilevel_search_also_traced(self, tiny_splits):
        train, val, _ = tiny_splits
        sink = MemorySink()
        result = search_bilevel(train, val, _config(epochs=1),
                                bus=EventBus([sink]))
        snapshots = sink.of_type("search_alpha")
        assert len(snapshots) == 1
        assert snapshots[0].payload["stage"] == "bilevel"
        assert snapshots[0].payload["methods"] == [m.value
                                                   for m in result.architecture]
