"""Model-discussion checks (paper Table III): models as OptInter instances.

The paper's §II-D argues that mainstream CTR models are instances of the
OptInter framework.  These tests pin the structural equivalences down:
the all-naïve OptInter is FNN, the all-memorize one is the deep memorized
method, parameter accounting is exact, and the architecture fully
determines the classifier's input width.
"""

import numpy as np
import pytest

from repro.core import Architecture, Method, OptInterModel, optinter_naive
from repro.data import Batch
from repro.models import FNN


def _model(dataset, arch, **kwargs):
    defaults = dict(embed_dim=4, cross_embed_dim=2, hidden_dims=(8,),
                    rng=np.random.default_rng(0))
    defaults.update(kwargs)
    return OptInterModel(dataset.cardinalities, dataset.cross_cardinalities,
                         architecture=arch, **defaults)


class TestNaiveEqualsFNN:
    def test_same_parameter_count(self, tiny_dataset):
        naive = optinter_naive(tiny_dataset.cardinalities,
                               tiny_dataset.cross_cardinalities,
                               embed_dim=4, cross_embed_dim=2,
                               hidden_dims=(8,),
                               rng=np.random.default_rng(0))
        fnn = FNN(tiny_dataset.cardinalities, embed_dim=4, hidden_dims=(8,),
                  rng=np.random.default_rng(0))
        assert naive.num_parameters() == fnn.num_parameters()

    def test_identical_outputs_with_shared_weights(self, tiny_dataset):
        """All-naïve OptInter computes exactly FNN's function."""
        naive = optinter_naive(tiny_dataset.cardinalities,
                               tiny_dataset.cross_cardinalities,
                               embed_dim=4, cross_embed_dim=2,
                               hidden_dims=(8,),
                               rng=np.random.default_rng(0))
        fnn = FNN(tiny_dataset.cardinalities, embed_dim=4, hidden_dims=(8,),
                  rng=np.random.default_rng(1))
        # Copy OptInter's weights into FNN (same structure, same names
        # modulo the embedding attribute name).
        naive_state = naive.state_dict()
        fnn_state = fnn.state_dict()
        mapping = dict(zip(sorted(fnn_state), sorted(naive_state)))
        fnn.load_state_dict({fnn_key: naive_state[naive_key]
                             for fnn_key, naive_key in mapping.items()})
        batch = tiny_dataset.full_batch()
        np.testing.assert_allclose(naive(batch).numpy(), fnn(batch).numpy())


class TestParameterAccounting:
    def test_classifier_width_tracks_architecture(self, tiny_dataset):
        """MLP input dim = M*s1 + #mem*s2 + #fac*s1 exactly."""
        m = tiny_dataset.num_fields
        P = tiny_dataset.num_pairs
        s1, s2 = 4, 2
        for n_mem, n_fac in [(0, 0), (3, 0), (0, 3), (2, 5)]:
            methods = ([Method.MEMORIZE] * n_mem + [Method.FACTORIZE] * n_fac
                       + [Method.NAIVE] * (P - n_mem - n_fac))
            arch = Architecture(methods=tuple(methods))
            model = _model(tiny_dataset, arch, embed_dim=s1,
                           cross_embed_dim=s2)
            expected = m * s1 + n_mem * s2 + n_fac * s1
            assert model.mlp.input_dim == expected, (n_mem, n_fac)

    def test_memorized_table_rows_exact(self, tiny_dataset):
        """The cross table holds exactly the memorized pairs' vocabularies."""
        P = tiny_dataset.num_pairs
        mem_pairs = [0, 2, P - 1]
        methods = [Method.MEMORIZE if p in mem_pairs else Method.NAIVE
                   for p in range(P)]
        model = _model(tiny_dataset, Architecture(methods=tuple(methods)))
        expected_rows = sum(tiny_dataset.cross_cardinalities[p]
                            for p in mem_pairs)
        assert model.cross_embedding.table.num_embeddings == expected_rows

    def test_num_parameters_is_sum_of_parts(self, tiny_dataset, rng):
        arch = Architecture.random(tiny_dataset.num_pairs, rng)
        model = _model(tiny_dataset, arch)
        total = sum(p.size for p in model.parameters())
        assert model.num_parameters() == total


class TestSearchFixedConsistency:
    def test_hardened_search_model_matches_fixed_dims(self, tiny_dataset):
        """Search-mode padding covers every candidate width."""
        search = _model(tiny_dataset, None)
        assert search._pad_dim == max(search.embed_dim,
                                      search.cross_embed_dim,
                                      search._fac_dim)

    def test_search_model_uses_full_cross_table(self, tiny_dataset):
        search = _model(tiny_dataset, None)
        assert (search.cross_embedding.table.num_embeddings
                == sum(tiny_dataset.cross_cardinalities))

    def test_fixed_models_from_same_alpha_agree(self, tiny_dataset):
        """Architecture.from_alpha and CombinationBlock decode identically."""
        search = _model(tiny_dataset, None)
        rng = np.random.default_rng(3)
        search.combination.alpha.data = rng.normal(
            size=search.combination.alpha.shape)
        from_block = search.derive_architecture()
        from_alpha = Architecture.from_alpha(search.combination.alpha.data)
        assert from_block == from_alpha
