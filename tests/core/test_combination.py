"""Combination block: Gumbel-softmax weights, Eq. 18 mixing, decode."""

import numpy as np
import pytest

from repro.core import CombinationBlock, Method, sample_gumbel
from repro.nn import Tensor


class TestSampleGumbel:
    def test_shape(self, rng):
        assert sample_gumbel((4, 3), rng).shape == (4, 3)

    def test_location(self, rng):
        # Gumbel(0,1) mean is the Euler-Mascheroni constant ~0.577.
        noise = sample_gumbel((200_000,), rng)
        assert abs(noise.mean() - 0.5772) < 0.02


class TestMethodWeights:
    def test_rows_sum_to_one_training(self, rng):
        block = CombinationBlock(6, rng=rng)
        block.train()
        w = block.method_weights().numpy()
        np.testing.assert_allclose(w.sum(axis=-1), 1.0, rtol=1e-9)

    def test_per_instance_noise_shape(self, rng):
        block = CombinationBlock(6, rng=rng)
        block.train()
        w = block.method_weights(batch_size=5).numpy()
        assert w.shape == (5, 6, 3)
        np.testing.assert_allclose(w.sum(axis=-1), 1.0, rtol=1e-9)

    def test_eval_mode_deterministic(self, rng):
        block = CombinationBlock(4, rng=rng)
        block.eval()
        a = block.method_weights().numpy()
        b = block.method_weights().numpy()
        np.testing.assert_array_equal(a, b)

    def test_training_mode_stochastic(self, rng):
        block = CombinationBlock(4, rng=rng)
        block.train()
        a = block.method_weights().numpy()
        b = block.method_weights().numpy()
        assert not np.allclose(a, b)

    def test_low_temperature_sharpens(self, rng):
        block = CombinationBlock(4, rng=rng)
        block.eval()
        block.alpha.data = np.tile([2.0, 0.0, -2.0], (4, 1))
        block.set_temperature(1.0)
        soft = block.probabilities()
        block.set_temperature(0.1)
        sharp = block.probabilities()
        assert sharp[:, 0].min() > soft[:, 0].max()

    def test_invalid_temperature(self, rng):
        block = CombinationBlock(4, rng=rng)
        with pytest.raises(ValueError):
            block.set_temperature(0.0)
        with pytest.raises(ValueError):
            CombinationBlock(4, temperature=-1.0, rng=rng)

    def test_probabilities_rows_sum_to_one(self, rng):
        block = CombinationBlock(7, rng=rng)
        np.testing.assert_allclose(block.probabilities().sum(axis=-1), 1.0,
                                   rtol=1e-12)


class TestCombine:
    def test_weighted_sum_semantics(self, rng):
        block = CombinationBlock(2, rng=rng)
        block.eval()
        # Force pair 0 -> memorize, pair 1 -> factorize (near-one-hot).
        block.alpha.data = np.array([[50.0, 0.0, 0.0], [0.0, 50.0, 0.0]])
        block.set_temperature(1.0)
        e_mem = Tensor(np.ones((3, 2, 4)))
        e_fac = Tensor(np.full((3, 2, 4), 2.0))
        out = block.combine(e_mem, e_fac).numpy()
        np.testing.assert_allclose(out[:, 0], 1.0, atol=1e-8)
        np.testing.assert_allclose(out[:, 1], 2.0, atol=1e-8)

    def test_naive_dilutes_both(self, rng):
        block = CombinationBlock(1, rng=rng)
        block.eval()
        block.alpha.data = np.array([[0.0, 0.0, 50.0]])  # naive wins
        out = block.combine(Tensor(np.ones((2, 1, 3))),
                            Tensor(np.ones((2, 1, 3)))).numpy()
        np.testing.assert_allclose(out, 0.0, atol=1e-8)

    def test_shape_mismatch_rejected(self, rng):
        block = CombinationBlock(2, rng=rng)
        with pytest.raises(ValueError):
            block.combine(Tensor(np.ones((2, 2, 3))),
                          Tensor(np.ones((2, 2, 4))))

    def test_alpha_receives_gradient(self, rng):
        block = CombinationBlock(3, rng=rng)
        block.train()
        e_mem = Tensor(np.random.default_rng(0).normal(size=(4, 3, 2)))
        e_fac = Tensor(np.random.default_rng(1).normal(size=(4, 3, 2)))
        block.combine(e_mem, e_fac).sum().backward()
        assert block.alpha.grad is not None
        assert np.abs(block.alpha.grad).sum() > 0


class TestDerive:
    def test_derive_architecture_argmax(self, rng):
        block = CombinationBlock(3, rng=rng)
        block.alpha.data = np.array([[5.0, 0, 0], [0, 5.0, 0], [0, 0, 5.0]])
        arch = block.derive_architecture()
        assert list(arch) == [Method.MEMORIZE, Method.FACTORIZE, Method.NAIVE]
