"""HigherOrderOptInter: third-order search, retrain, planted recovery."""

import numpy as np
import pytest

from repro.core import (
    Architecture,
    HigherOrderOptInter,
    Method,
    SearchConfig,
    retrain_higher_order,
    run_higher_order,
    search_higher_order,
)
from repro.data import SyntheticConfig, make_dataset
from repro.nn import binary_cross_entropy_with_logits
from repro.training import evaluate_model


@pytest.fixture(scope="module")
def triple_data():
    config = SyntheticConfig(
        cardinalities=[8, 10, 6, 12, 9, 7],
        n_samples=4000,
        n_memorizable=1,
        n_factorizable=1,
        n_memorizable_triples=1,
        triple_strength=2.5,
        min_count=1,
        cross_min_count=2,
        seed=4,
    )
    dataset, truth = make_dataset(config, with_triples=True,
                                  triple_min_count=2)
    train, val, test = dataset.split((0.7, 0.1, 0.2),
                                     rng=np.random.default_rng(0))
    return dataset, truth, train, val, test


def _search_config(**overrides):
    base = dict(embed_dim=4, cross_embed_dim=3, hidden_dims=(16,),
                epochs=2, batch_size=256, lr=3e-3, lr_arch=2e-2,
                l2_cross=5e-2, temperature_start=0.5, temperature_end=0.5,
                seed=0)
    base.update(overrides)
    return SearchConfig(**base)


def _model(dataset, pair_arch=None, triple_arch=None, **kwargs):
    defaults = dict(embed_dim=4, cross_embed_dim=3, hidden_dims=(16,),
                    rng=np.random.default_rng(0))
    defaults.update(kwargs)
    return HigherOrderOptInter(
        cardinalities=dataset.cardinalities,
        cross_cardinalities=dataset.cross_cardinalities,
        triples=dataset.triples,
        triple_cardinalities=dataset.triple_cardinalities,
        pair_architecture=pair_arch,
        triple_architecture=triple_arch,
        **defaults,
    )


class TestModel:
    def test_search_mode_forward(self, triple_data):
        dataset, *_ = triple_data
        model = _model(dataset)
        batch = dataset.full_batch()
        out = model(batch)
        assert out.shape == (len(dataset),)
        assert model.is_search_mode

    def test_two_alpha_matrices(self, triple_data):
        dataset, *_ = triple_data
        model = _model(dataset)
        alphas = model.architecture_parameters()
        assert len(alphas) == 2
        assert alphas[0].shape == (dataset.num_pairs, 3)
        assert alphas[1].shape == (len(dataset.triples), 3)

    def test_gradients_reach_both_alphas(self, triple_data):
        dataset, *_ = triple_data
        model = _model(dataset)
        batch = next(dataset.iter_batches(128))
        binary_cross_entropy_with_logits(model(batch), batch.y).backward()
        for alpha in model.architecture_parameters():
            assert alpha.grad is not None
            assert np.abs(alpha.grad).sum() > 0

    def test_fixed_mode_param_accounting(self, triple_data):
        dataset, *_ = triple_data
        P, T = dataset.num_pairs, len(dataset.triples)
        lean = _model(dataset, Architecture.all_naive(P),
                      Architecture.all_naive(T))
        heavy = _model(dataset, Architecture.all_memorize(P),
                       Architecture.all_memorize(T))
        assert lean.num_parameters() < heavy.num_parameters()

    def test_mixed_mode_rejected(self, triple_data):
        dataset, *_ = triple_data
        with pytest.raises(ValueError):
            _model(dataset, Architecture.all_naive(dataset.num_pairs), None)

    def test_architecture_size_validated(self, triple_data):
        dataset, *_ = triple_data
        with pytest.raises(ValueError):
            _model(dataset, Architecture.all_naive(3),
                   Architecture.all_naive(len(dataset.triples)))

    def test_missing_triples_in_batch_rejected(self, triple_data):
        dataset, *_ = triple_data
        from repro.data import Batch

        model = _model(dataset)
        batch = Batch(x=dataset.x[:8], x_cross=dataset.x_cross[:8],
                      y=dataset.y[:8])
        with pytest.raises(ValueError):
            model(batch)

    def test_derive_architectures(self, triple_data):
        dataset, *_ = triple_data
        model = _model(dataset)
        pair_arch, triple_arch = model.derive_architectures()
        assert pair_arch.num_pairs == dataset.num_pairs
        assert triple_arch.num_pairs == len(dataset.triples)

    def test_derive_rejected_in_fixed_mode(self, triple_data):
        dataset, *_ = triple_data
        model = _model(dataset,
                       Architecture.all_naive(dataset.num_pairs),
                       Architecture.all_naive(len(dataset.triples)))
        with pytest.raises(RuntimeError):
            model.derive_architectures()


class TestPipeline:
    def test_search_returns_both_orders(self, triple_data):
        _, _, train, val, _ = triple_data
        pair_arch, triple_arch, history, model = search_higher_order(
            train, val, _search_config())
        assert pair_arch.num_pairs == train.num_pairs
        assert triple_arch.num_pairs == len(train.triples)
        assert len(history) == 2

    def test_search_requires_triples(self, tiny_splits):
        train, val, _ = tiny_splits
        with pytest.raises(ValueError):
            search_higher_order(train, val, _search_config())

    def test_full_pipeline_recovers_planted_triple(self, triple_data):
        _, truth, train, val, test = triple_data
        result = run_higher_order(train, val, _search_config(epochs=2),
                                  retrain_epochs=4)
        planted = truth.memorizable_triples[0]
        t_idx = train.triples.index(planted)
        assert result.triple_architecture[t_idx] is not Method.NAIVE
        metrics = evaluate_model(result.model, test)
        assert metrics["auc"] > 0.6

    def test_retrain_fresh_and_deterministic(self, triple_data):
        _, _, train, val, _ = triple_data
        P, T = train.num_pairs, len(train.triples)
        pair_arch = Architecture.all_factorize(P)
        triple_arch = Architecture.all_naive(T)
        config = _search_config()
        model_a, _ = retrain_higher_order(pair_arch, triple_arch, train, val,
                                          config, epochs=1)
        model_b, _ = retrain_higher_order(pair_arch, triple_arch, train, val,
                                          config, epochs=1)
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        for key in state_a:
            np.testing.assert_array_equal(state_a[key], state_b[key])

    def test_third_order_helps_on_triple_data(self, triple_data):
        """Memorizing the planted triple beats ignoring all triples."""
        _, truth, train, val, test = triple_data
        P, T = train.num_pairs, len(train.triples)
        planted_idx = train.triples.index(truth.memorizable_triples[0])
        with_triple = Architecture(methods=tuple(
            Method.MEMORIZE if t == planted_idx else Method.NAIVE
            for t in range(T)))
        config = _search_config()
        pair_arch = Architecture.all_naive(P)
        model_with, _ = retrain_higher_order(pair_arch, with_triple, train,
                                             val, config, epochs=5)
        model_without, _ = retrain_higher_order(
            pair_arch, Architecture.all_naive(T), train, val, config,
            epochs=5)
        auc_with = evaluate_model(model_with, test)["auc"]
        auc_without = evaluate_model(model_without, test)["auc"]
        assert auc_with > auc_without
