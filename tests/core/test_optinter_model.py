"""OptInterModel: search vs fixed mode, parameter accounting, instances."""

import numpy as np
import pytest

from repro.core import (
    Architecture,
    Method,
    OptInterModel,
    optinter_f,
    optinter_m,
    optinter_naive,
)
from repro.data import Batch
from repro.nn import binary_cross_entropy_with_logits


def _batch(dataset, n=8):
    return Batch(x=dataset.x[:n], x_cross=dataset.x_cross[:n],
                 y=dataset.y[:n])


def _model(dataset, architecture=None, rng=None, **kwargs):
    defaults = dict(embed_dim=4, cross_embed_dim=2, hidden_dims=(8,))
    defaults.update(kwargs)
    return OptInterModel(dataset.cardinalities, dataset.cross_cardinalities,
                         architecture=architecture,
                         rng=rng or np.random.default_rng(0), **defaults)


class TestSearchMode:
    def test_forward_shape(self, tiny_dataset):
        model = _model(tiny_dataset)
        assert model.is_search_mode
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_alpha_gets_gradient(self, tiny_dataset):
        model = _model(tiny_dataset)
        batch = _batch(tiny_dataset)
        binary_cross_entropy_with_logits(model(batch), batch.y).backward()
        (alpha,) = model.architecture_parameters()
        assert alpha.grad is not None
        assert np.abs(alpha.grad).sum() > 0

    def test_network_parameters_exclude_alpha(self, tiny_dataset):
        model = _model(tiny_dataset)
        alpha_ids = {id(p) for p in model.architecture_parameters()}
        network_ids = {id(p) for p in model.network_parameters()}
        assert alpha_ids.isdisjoint(network_ids)
        assert len(alpha_ids) + len(network_ids) == len(model.parameters())

    def test_derive_architecture(self, tiny_dataset):
        model = _model(tiny_dataset)
        arch = model.derive_architecture()
        assert arch.num_pairs == tiny_dataset.num_pairs

    def test_requires_cross_features(self, tiny_dataset):
        model = _model(tiny_dataset)
        with pytest.raises(ValueError):
            model(Batch(x=tiny_dataset.x[:4], x_cross=None,
                        y=tiny_dataset.y[:4]))


class TestFixedMode:
    def test_all_memorize_equals_paper_optinter_m(self, tiny_dataset):
        model = optinter_m(tiny_dataset.cardinalities,
                           tiny_dataset.cross_cardinalities,
                           embed_dim=4, cross_embed_dim=2, hidden_dims=(8,),
                           rng=np.random.default_rng(0))
        assert model.architecture.counts() == [tiny_dataset.num_pairs, 0, 0]
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_all_factorize(self, tiny_dataset):
        model = optinter_f(tiny_dataset.cardinalities,
                           tiny_dataset.cross_cardinalities,
                           embed_dim=4, cross_embed_dim=2, hidden_dims=(8,),
                           rng=np.random.default_rng(0))
        assert model.architecture.counts() == [0, tiny_dataset.num_pairs, 0]
        assert model.cross_embedding is None
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_all_naive_has_no_interaction_params(self, tiny_dataset):
        model = optinter_naive(tiny_dataset.cardinalities,
                               tiny_dataset.cross_cardinalities,
                               embed_dim=4, cross_embed_dim=2,
                               hidden_dims=(8,),
                               rng=np.random.default_rng(0))
        assert model.cross_embedding is None
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_mixed_architecture_params_between_extremes(self, tiny_dataset):
        num_pairs = tiny_dataset.num_pairs
        mixed = Architecture.from_assignment(
            ["memorize"] * (num_pairs // 3)
            + ["factorize"] * (num_pairs // 3)
            + ["naive"] * (num_pairs - 2 * (num_pairs // 3)))
        mem = _model(tiny_dataset, Architecture.all_memorize(num_pairs))
        mid = _model(tiny_dataset, mixed)
        naive = _model(tiny_dataset, Architecture.all_naive(num_pairs))
        assert naive.num_parameters() < mid.num_parameters() < mem.num_parameters()

    def test_memorized_tables_only_for_memorized_pairs(self, tiny_dataset):
        num_pairs = tiny_dataset.num_pairs
        one_mem = Architecture.from_assignment(
            ["memorize"] + ["naive"] * (num_pairs - 1))
        model = _model(tiny_dataset, one_mem)
        expected_rows = tiny_dataset.cross_cardinalities[0]
        assert model.cross_embedding.table.num_embeddings == expected_rows

    def test_derive_rejected_in_fixed_mode(self, tiny_dataset):
        model = _model(tiny_dataset,
                       Architecture.all_naive(tiny_dataset.num_pairs))
        with pytest.raises(RuntimeError):
            model.derive_architecture()

    def test_architecture_pair_count_validated(self, tiny_dataset):
        with pytest.raises(ValueError):
            _model(tiny_dataset, Architecture.all_naive(3))

    def test_gradients_flow_in_fixed_mode(self, tiny_dataset, rng):
        arch = Architecture.random(tiny_dataset.num_pairs, rng)
        model = _model(tiny_dataset, arch)
        batch = _batch(tiny_dataset)
        binary_cross_entropy_with_logits(model(batch), batch.y).backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"{name} got no gradient"


class TestFactorizationOptions:
    def test_inner_product_factorization(self, tiny_dataset):
        model = _model(tiny_dataset,
                       Architecture.all_factorize(tiny_dataset.num_pairs),
                       factorization="inner")
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_inner_smaller_classifier_than_hadamard(self, tiny_dataset):
        arch = Architecture.all_factorize(tiny_dataset.num_pairs)
        inner = _model(tiny_dataset, arch, factorization="inner")
        hadamard = _model(tiny_dataset, arch, factorization="hadamard")
        assert inner.num_parameters() < hadamard.num_parameters()

    def test_add_factorization(self, tiny_dataset):
        model = _model(tiny_dataset,
                       Architecture.all_factorize(tiny_dataset.num_pairs),
                       factorization="add")
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_generalized_starts_as_hadamard(self, tiny_dataset):
        arch = Architecture.all_factorize(tiny_dataset.num_pairs)
        had = _model(tiny_dataset, arch, factorization="hadamard",
                     rng=np.random.default_rng(9))
        gen = _model(tiny_dataset, arch, factorization="generalized",
                     rng=np.random.default_rng(9))
        # The generalized kernel initialises to ones, but the extra
        # Parameter shifts the RNG stream for the MLP, so compare the
        # factorized embeddings directly instead of the logits.
        emb = gen.embedding(tiny_dataset.x[:5])
        e_gen = gen._factorized_embeddings(emb, gen._fac_pairs)
        gen.factorization = "hadamard"
        e_had = gen._factorized_embeddings(emb, gen._fac_pairs)
        gen.factorization = "generalized"
        np.testing.assert_allclose(e_gen.numpy(), e_had.numpy())

    def test_generalized_kernel_gets_gradient(self, tiny_dataset):
        model = _model(tiny_dataset,
                       Architecture.all_factorize(tiny_dataset.num_pairs),
                       factorization="generalized")
        batch = _batch(tiny_dataset)
        binary_cross_entropy_with_logits(model(batch), batch.y).backward()
        assert model.generalized_kernel.grad is not None
        assert np.abs(model.generalized_kernel.grad).sum() > 0

    def test_generalized_kernel_absent_without_fac_pairs(self, tiny_dataset):
        model = _model(tiny_dataset,
                       Architecture.all_memorize(tiny_dataset.num_pairs),
                       factorization="generalized")
        assert model.generalized_kernel is None

    def test_search_mode_supports_all_factorizations(self, tiny_dataset):
        from repro.core.optinter import FACTORIZATIONS

        for fac in FACTORIZATIONS:
            model = _model(tiny_dataset, factorization=fac)
            assert model(_batch(tiny_dataset)).shape == (8,), fac

    def test_unknown_factorization_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            _model(tiny_dataset, factorization="outer")

    def test_cross_cardinality_count_validated(self, tiny_dataset):
        with pytest.raises(ValueError):
            OptInterModel(tiny_dataset.cardinalities, [10, 10],
                          embed_dim=4, cross_embed_dim=2)
