"""TrainingCheckpoint / CheckpointManager: round-trips, integrity, retention."""

import os

import numpy as np
import pytest

from repro.models import FNN
from repro.nn.optim import Adam
from repro.resilience import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    CorruptCheckpointError,
    TrainingCheckpoint,
)
from repro.training.history import EpochRecord, History

pytestmark = pytest.mark.resilience


@pytest.fixture()
def model_and_opt(tiny_dataset, rng):
    model = FNN(tiny_dataset.cardinalities, embed_dim=4, hidden_dims=(8,),
                rng=rng)
    return model, Adam(model.parameters(), lr=1e-2)


def _history(n=2):
    history = History()
    for epoch in range(n):
        history.append(EpochRecord(epoch=epoch, train_loss=0.5 - 0.1 * epoch,
                                   val_auc=0.6 + 0.05 * epoch))
    return history


class TestTrainingCheckpoint:
    def test_roundtrip_preserves_everything(self, model_and_opt, tmp_path):
        model, opt = model_and_opt
        gen = np.random.default_rng(123)
        gen.random(10)  # advance the stream so the state is non-trivial
        ckpt = TrainingCheckpoint.capture(
            model, opt, epoch=4, global_step=37, rng=gen,
            history=_history(), extras={"best_auc": 0.71, "stale": 1},
            best_state=model.state_dict())
        path = tmp_path / "ckpt.npz"
        ckpt.save(path)
        loaded = TrainingCheckpoint.load(path)
        assert loaded.epoch == 4
        assert loaded.global_step == 37
        assert loaded.version == CHECKPOINT_VERSION
        assert loaded.extras == {"best_auc": 0.71, "stale": 1}
        assert [r.as_dict() for r in loaded.history] == \
               [r.as_dict() for r in ckpt.history]
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(loaded.model_state[key], value)
            np.testing.assert_array_equal(loaded.best_state[key], value)
        assert loaded.rng_state == ckpt.rng_state

    def test_restore_resumes_rng_stream(self, model_and_opt, tmp_path):
        model, opt = model_and_opt
        gen = np.random.default_rng(9)
        gen.random(5)
        ckpt = TrainingCheckpoint.capture(model, opt, epoch=0, global_step=0,
                                          rng=gen)
        expected = gen.random(4)  # what the stream yields after the snapshot
        path = tmp_path / "c.npz"
        ckpt.save(path)
        fresh = np.random.default_rng(777)
        TrainingCheckpoint.load(path).restore(model, opt, rng=fresh)
        np.testing.assert_array_equal(fresh.random(4), expected)

    def test_restore_loads_model_and_optimizer(self, model_and_opt,
                                               tiny_dataset, tmp_path):
        model, opt = model_and_opt
        batch = tiny_dataset.full_batch()
        before = model(batch).numpy()
        ckpt = TrainingCheckpoint.capture(model, opt, epoch=0, global_step=0)
        # Perturb the weights, then restore.
        for param in model.parameters():
            param.data = param.data + 1.0
        ckpt.restore(model, opt)
        np.testing.assert_array_equal(model(batch).numpy(), before)

    def test_truncated_file_is_corrupt(self, model_and_opt, tmp_path):
        model, opt = model_and_opt
        path = tmp_path / "c.npz"
        TrainingCheckpoint.capture(model, opt, epoch=0, global_step=0).save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CorruptCheckpointError):
            TrainingCheckpoint.load(path)

    def test_flipped_byte_is_corrupt(self, model_and_opt, tmp_path):
        model, opt = model_and_opt
        path = tmp_path / "c.npz"
        TrainingCheckpoint.capture(model, opt, epoch=0, global_step=0).save(path)
        mangled = bytearray(path.read_bytes())
        mangled[len(mangled) // 2] ^= 0xFF
        path.write_bytes(bytes(mangled))
        with pytest.raises(CorruptCheckpointError):
            TrainingCheckpoint.load(path)

    def test_checksum_mismatch_detected(self, model_and_opt):
        """Content tampering that keeps the zip valid still fails."""
        model, opt = model_and_opt
        ckpt = TrainingCheckpoint.capture(model, opt, epoch=0, global_step=0)
        tampered = TrainingCheckpoint.capture(model, opt, epoch=0,
                                              global_step=0)
        name = next(iter(tampered.model_state))
        tampered.model_state[name] = tampered.model_state[name] + 1.0
        # Serialise the original but splice in the tampered arrays by
        # rebuilding with the original's checksum: easiest equivalent is
        # verifying from_bytes(to_bytes) is self-consistent and a manual
        # checksum swap fails.
        import io as stdio
        import json
        import zipfile

        raw = ckpt.to_bytes()
        with zipfile.ZipFile(stdio.BytesIO(raw)) as archive:
            names = archive.namelist()
        assert any(n.startswith("model/") for n in names)
        # Replace one model entry's bytes with zeros of the same length,
        # keeping the stored checksum: must be rejected.
        buffer = stdio.BytesIO()
        with zipfile.ZipFile(stdio.BytesIO(raw)) as src, \
                zipfile.ZipFile(buffer, "w") as dst:
            for name in names:
                payload = src.read(name)
                if name.startswith("model/") and name.endswith(".npy"):
                    # Zero the array body, keep the .npy header intact.
                    payload = payload[:128] + b"\0" * (len(payload) - 128)
                dst.writestr(name, payload)
        with pytest.raises(CorruptCheckpointError):
            TrainingCheckpoint.from_bytes(buffer.getvalue())

    def test_future_version_refused(self, model_and_opt, tmp_path):
        model, opt = model_and_opt
        ckpt = TrainingCheckpoint.capture(model, opt, epoch=0, global_step=0)
        ckpt.version = CHECKPOINT_VERSION + 1
        path = tmp_path / "c.npz"
        ckpt.save(path)
        with pytest.raises(CorruptCheckpointError, match="version"):
            TrainingCheckpoint.load(path)

    def test_missing_file_raises_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TrainingCheckpoint.load(tmp_path / "nope.npz")

    def test_atomic_write_leaves_no_temp_files(self, model_and_opt, tmp_path):
        model, opt = model_and_opt
        TrainingCheckpoint.capture(model, opt, epoch=0, global_step=0).save(
            tmp_path / "c.npz")
        leftovers = [p for p in os.listdir(tmp_path) if p != "c.npz"]
        assert leftovers == []


class TestCheckpointManager:
    def _save(self, manager, model, opt, epochs):
        for epoch in epochs:
            manager.save(TrainingCheckpoint.capture(
                model, opt, epoch=epoch, global_step=10 * epoch))

    def test_keep_last_k_retention(self, model_and_opt, tmp_path):
        model, opt = model_and_opt
        manager = CheckpointManager(tmp_path, keep_last=2)
        self._save(manager, model, opt, range(5))
        names = [p.name for p in manager.checkpoints()]
        assert names == ["ckpt-00000003.npz", "ckpt-00000004.npz"]

    def test_latest_valid_returns_newest(self, model_and_opt, tmp_path):
        model, opt = model_and_opt
        manager = CheckpointManager(tmp_path, keep_last=5)
        self._save(manager, model, opt, range(3))
        ckpt, path = manager.latest_valid()
        assert ckpt.epoch == 2
        assert path.name == "ckpt-00000002.npz"

    def test_corrupt_newest_falls_back(self, model_and_opt, tmp_path):
        model, opt = model_and_opt
        manager = CheckpointManager(tmp_path, keep_last=5)
        self._save(manager, model, opt, range(3))
        newest = manager.checkpoints()[-1]
        data = newest.read_bytes()
        newest.write_bytes(data[: len(data) // 3])
        reported = []
        ckpt, path = manager.latest_valid(
            on_corrupt=lambda p, e: reported.append(p.name))
        assert ckpt.epoch == 1
        assert reported == ["ckpt-00000002.npz"]

    def test_all_corrupt_returns_none(self, model_and_opt, tmp_path):
        model, opt = model_and_opt
        manager = CheckpointManager(tmp_path, keep_last=5)
        self._save(manager, model, opt, range(2))
        for path in manager.checkpoints():
            path.write_bytes(b"not a checkpoint")
        assert manager.latest_valid() is None

    def test_empty_directory_returns_none(self, tmp_path):
        assert CheckpointManager(tmp_path / "new").latest_valid() is None

    def test_foreign_files_ignored(self, model_and_opt, tmp_path):
        model, opt = model_and_opt
        manager = CheckpointManager(tmp_path, keep_last=3)
        (tmp_path / "notes.txt").write_text("hello")
        (tmp_path / "ckpt-xyz.npz").write_text("not numeric")
        self._save(manager, model, opt, [0])
        assert [p.name for p in manager.checkpoints()] == ["ckpt-00000000.npz"]

    def test_keep_last_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep_last=0)
