"""Fault injectors + end-to-end crash/resume and NaN-recovery guarantees.

These are the acceptance tests of the resilience subsystem: a run killed
mid-training and resumed from its checkpoint directory must reproduce
the uninterrupted run's History and final parameters exactly, and a
poisoned gradient must trigger a logged skip/rollback under a
RecoveryPolicy while preserving the historical raising behaviour
without one.
"""

import numpy as np
import pytest

from repro.core import SearchConfig, run_optinter, search_optinter
from repro.core.retrain import RetrainConfig
from repro.models import FNN
from repro.nn.optim import Adam
from repro.obs import EventBus, MemorySink
from repro.resilience import (
    BatchCorruptor,
    CheckpointManager,
    CrashAtStep,
    FaultyDataset,
    GradientPoison,
    InjectedCrash,
    RecoveryPolicy,
    corrupt_batch,
)
from repro.training.trainer import Trainer

pytestmark = pytest.mark.resilience


def _trainer(dataset, *, model_seed=0, rng_seed=1, max_epochs=4, **kwargs):
    model = FNN(dataset.cardinalities, embed_dim=4, hidden_dims=(8,),
                rng=np.random.default_rng(model_seed))
    opt = Adam(model.parameters(), lr=1e-2)
    trainer = Trainer(model, opt, batch_size=64, max_epochs=max_epochs,
                      patience=10, rng=np.random.default_rng(rng_seed),
                      **kwargs)
    return model, opt, trainer


def _dicts(history):
    return [record.as_dict() for record in history]


class TestInjectors:
    def test_corrupt_batch_poisons_labels(self, tiny_dataset):
        batch = tiny_dataset.full_batch()
        bad = corrupt_batch(batch)
        assert np.isnan(bad.y).all()
        assert np.isfinite(batch.y).all()  # original untouched

    def test_corrupt_batch_fraction(self, tiny_dataset):
        batch = tiny_dataset.full_batch()
        bad = corrupt_batch(batch, fraction=0.25,
                            rng=np.random.default_rng(0))
        frac = np.isnan(bad.y).mean()
        assert 0.2 < frac < 0.3

    def test_corrupt_batch_validates_fraction(self, tiny_dataset):
        with pytest.raises(ValueError):
            corrupt_batch(tiny_dataset.full_batch(), fraction=0.0)

    def test_batch_corruptor_fires_once(self, tiny_dataset):
        corruptor = BatchCorruptor(at_batch=1)
        batches = list(tiny_dataset.iter_batches(256))
        out = [corruptor(b) for b in batches]
        assert not np.isnan(out[0].y).any()
        assert np.isnan(out[1].y).all()
        assert all(not np.isnan(b.y).any() for b in out[2:])
        assert corruptor.fired

    def test_faulty_dataset_delegates(self, tiny_dataset):
        faulty = FaultyDataset(tiny_dataset, BatchCorruptor(at_batch=0))
        assert len(faulty) == len(tiny_dataset)
        assert faulty.cardinalities == tiny_dataset.cardinalities
        first = next(iter(faulty.iter_batches(64)))
        assert np.isnan(first.y).all()

    def test_gradient_poison_targets_named_param(self, tiny_splits):
        train, _, _ = tiny_splits
        model, _, trainer = _trainer(train, max_epochs=1)
        poison = GradientPoison(at_step=0, param_name="embedding")
        hit = {}

        def check(mdl, batch, step):
            poison(mdl, batch, step)
            if step == 0:
                hit.update({name: (param.grad is not None
                                   and np.isnan(param.grad).all())
                            for name, param in mdl.named_parameters()})
                raise InjectedCrash("stop after checking")

        trainer.on_backward = check
        with pytest.raises(InjectedCrash):
            trainer.fit(train)
        assert any(ok for name, ok in hit.items() if "embedding" in name)
        assert all(not ok for name, ok in hit.items()
                   if "embedding" not in name)

    def test_crash_at_step_counts_applied_updates(self, tiny_splits):
        train, _, _ = tiny_splits
        crash = CrashAtStep(at_step=3)
        _, _, trainer = _trainer(train, on_step=crash)
        with pytest.raises(InjectedCrash):
            trainer.fit(train)
        assert crash.applied == 3


class TestCrashResume:
    def test_interrupted_run_resumes_bit_for_bit(self, tiny_splits, tmp_path):
        """Acceptance: kill mid-training, resume, match the clean run."""
        train, val, _ = tiny_splits
        model_ref, _, trainer_ref = _trainer(train)
        history_ref = trainer_ref.fit(train, val)

        # 1050 train rows / batch 64 = 17 steps per epoch; step 40 dies
        # mid-epoch-2, after the epoch-0 and epoch-1 checkpoints landed.
        _, _, trainer_crash = _trainer(train, checkpoint_dir=tmp_path,
                                       on_step=CrashAtStep(at_step=40))
        with pytest.raises(InjectedCrash):
            trainer_crash.fit(train, val)
        assert CheckpointManager(tmp_path).checkpoints()  # progress persisted

        # Resume with a *differently seeded* fresh model: every relevant
        # bit of state must come from the checkpoint, not the constructor.
        model_res, _, trainer_res = _trainer(train, model_seed=123,
                                             rng_seed=456,
                                             checkpoint_dir=tmp_path,
                                             resume=True)
        history_res = trainer_res.fit(train, val)

        assert _dicts(history_res) == _dicts(history_ref)
        ref_state = model_ref.state_dict()
        res_state = model_res.state_dict()
        for key in ref_state:
            np.testing.assert_array_equal(res_state[key], ref_state[key])

    def test_resume_of_finished_run_trains_no_further(self, tiny_splits,
                                                      tmp_path):
        train, val, _ = tiny_splits
        sink = MemorySink()
        _, _, first = _trainer(train, checkpoint_dir=tmp_path)
        history_first = first.fit(train, val)
        _, _, again = _trainer(train, model_seed=5, rng_seed=6,
                               checkpoint_dir=tmp_path, resume=True,
                               bus=EventBus([sink]))
        history_again = again.fit(train, val)
        assert _dicts(history_again) == _dicts(history_first)
        # No fresh epochs were trained on resume.
        assert sink.of_type("epoch_end") == []

    def test_corrupt_newest_checkpoint_falls_back(self, tiny_splits,
                                                  tmp_path):
        """Acceptance: checksum detects the bad newest file; resume uses
        the previous intact one and the trace records the fallback."""
        train, val, _ = tiny_splits
        model_ref, _, trainer_ref = _trainer(train)
        history_ref = trainer_ref.fit(train, val)

        _, _, trainer_full = _trainer(train, checkpoint_dir=tmp_path,
                                      keep_last=10)
        trainer_full.fit(train, val)
        newest = CheckpointManager(tmp_path).checkpoints()[-1]
        data = newest.read_bytes()
        newest.write_bytes(data[: len(data) // 2])

        sink = MemorySink()
        model_res, _, trainer_res = _trainer(train, model_seed=9, rng_seed=8,
                                             checkpoint_dir=tmp_path,
                                             resume=True,
                                             bus=EventBus([sink]))
        history_res = trainer_res.fit(train, val)
        actions = [e.payload["action"] for e in sink.of_type("recovery")]
        assert actions[:2] == ["fallback", "resume"]
        # The run still reproduces the reference exactly: the lost epoch
        # is simply re-trained from the previous intact checkpoint.
        assert _dicts(history_res) == _dicts(history_ref)
        ref_state = model_ref.state_dict()
        res_state = model_res.state_dict()
        for key in ref_state:
            np.testing.assert_array_equal(res_state[key], ref_state[key])


class TestNaNRecovery:
    def test_poisoned_gradient_recovers_with_policy(self, tiny_splits):
        """Acceptance: poison at step k -> logged skip, finite val AUC."""
        train, val, _ = tiny_splits
        sink = MemorySink()
        _, _, trainer = _trainer(train,
                                 recovery=RecoveryPolicy(max_batch_skips=2),
                                 on_backward=GradientPoison(at_step=5),
                                 bus=EventBus([sink]))
        history = trainer.fit(train, val)
        events = sink.of_type("recovery")
        assert [e.payload["action"] for e in events] == ["skip"]
        assert events[0].payload["reason"] == "non_finite_gradient"
        assert events[0].payload["step"] == 5
        assert np.isfinite(history.last.val_auc)

    def test_poisoned_gradient_raises_without_policy(self, tiny_splits):
        """The historical fail-fast path is preserved, now with context."""
        train, val, _ = tiny_splits
        _, _, trainer = _trainer(train, on_backward=GradientPoison(at_step=5))
        with pytest.raises(RuntimeError,
                           match=r"epoch 0, global step \d+"):
            trainer.fit(train, val)

    def test_corrupt_batch_recovers_with_policy(self, tiny_splits):
        train, val, _ = tiny_splits
        faulty = FaultyDataset(train, BatchCorruptor(at_batch=3))
        sink = MemorySink()
        _, _, trainer = _trainer(train,
                                 recovery=RecoveryPolicy(max_batch_skips=2),
                                 bus=EventBus([sink]))
        history = trainer.fit(faulty, val)
        events = sink.of_type("recovery")
        assert [e.payload["action"] for e in events] == ["skip"]
        assert events[0].payload["reason"] == "non_finite_loss"
        assert np.isfinite(history.last.val_auc)

    def test_corrupt_batch_raises_without_policy(self, tiny_splits):
        train, val, _ = tiny_splits
        faulty = FaultyDataset(train, BatchCorruptor(at_batch=3))
        _, _, trainer = _trainer(train)
        with pytest.raises(RuntimeError, match="non-finite training loss"):
            trainer.fit(faulty, val)

    def test_sustained_poison_rolls_back_then_converges(self, tiny_splits):
        train, val, _ = tiny_splits

        class PoisonCalls:
            def __init__(self, lo, hi):
                self.calls = 0
                self.lo, self.hi = lo, hi

            def __call__(self, model, batch, step):
                self.calls += 1
                if self.lo <= self.calls <= self.hi:
                    for param in model.parameters():
                        if param.grad is not None:
                            param.grad = np.full_like(param.grad, np.nan)

        sink = MemorySink()
        _, opt, trainer = _trainer(
            train, recovery=RecoveryPolicy(max_batch_skips=1, max_restarts=2),
            on_backward=PoisonCalls(3, 5), bus=EventBus([sink]))
        history = trainer.fit(train, val)
        actions = [e.payload["action"] for e in sink.of_type("recovery")]
        assert "rollback" in actions
        assert opt.param_groups[0]["lr"] == pytest.approx(5e-3)
        assert np.isfinite(history.last.val_auc)


class TestPipelineResume:
    def test_search_resume_bit_for_bit(self, tiny_splits, tmp_path):
        train, val, _ = tiny_splits
        config = dict(epochs=3, batch_size=128, seed=5)
        ref = search_optinter(train, val, SearchConfig(**config))
        search_optinter(train, val, SearchConfig(**config),
                        checkpoint_dir=tmp_path)
        # Pretend the run died during the final epoch.
        CheckpointManager(tmp_path).checkpoints()[-1].unlink()
        sink = MemorySink()
        resumed = search_optinter(train, val, SearchConfig(**config),
                                  checkpoint_dir=tmp_path, resume=True,
                                  bus=EventBus([sink]))
        np.testing.assert_array_equal(resumed.alpha, ref.alpha)
        assert _dicts(resumed.history) == _dicts(ref.history)
        assert resumed.architecture == ref.architecture
        assert [e.payload["action"]
                for e in sink.of_type("recovery")] == ["resume"]

    def test_run_optinter_resumes_retrain_and_skips_search(self, tiny_splits,
                                                           tmp_path):
        train, val, _ = tiny_splits
        search_config = dict(epochs=2, batch_size=128, seed=5)
        retrain_config = RetrainConfig(epochs=3, batch_size=128, seed=6)
        ref = run_optinter(train, val, SearchConfig(**search_config),
                           retrain_config)
        run_optinter(train, val, SearchConfig(**search_config),
                     retrain_config, checkpoint_dir=tmp_path)
        # Kill the newest retrain checkpoint: the resumed pipeline must
        # skip the (already completed) search and re-train the lost epoch.
        CheckpointManager(tmp_path / "retrain").checkpoints()[-1].unlink()
        resumed = run_optinter(train, val, SearchConfig(**search_config),
                               retrain_config, checkpoint_dir=tmp_path,
                               resume=True)
        assert resumed.search is None  # search skipped via the marker file
        assert resumed.architecture == ref.architecture
        assert _dicts(resumed.retrain_history) == _dicts(ref.retrain_history)
        ref_state = ref.model.state_dict()
        res_state = resumed.model.state_dict()
        for key in ref_state:
            np.testing.assert_array_equal(res_state[key], ref_state[key])

    def test_search_recovery_policy_survives_poison(self, tiny_splits):
        train, val, _ = tiny_splits
        faulty = FaultyDataset(train, BatchCorruptor(at_batch=2))
        sink = MemorySink()
        result = search_optinter(faulty, val,
                                 SearchConfig(epochs=2, batch_size=128,
                                              seed=5),
                                 recovery=RecoveryPolicy(max_batch_skips=2),
                                 bus=EventBus([sink]))
        assert [e.payload["action"]
                for e in sink.of_type("recovery")] == ["skip"]
        assert np.all(np.isfinite(result.alpha))
