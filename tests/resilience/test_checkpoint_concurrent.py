"""`CheckpointManager.latest_valid` under a concurrent writer.

The campaign supervisor retries a killed job while (in pathological
races) the previous worker may still be flushing its last checkpoint;
`latest_valid` must never surface a torn file and must never crash when
the retention pruner deletes a checkpoint between the directory listing
and the read.
"""

import threading

import numpy as np
import pytest

from repro.models import LogisticRegression
from repro.nn.optim import Adam
from repro.resilience.checkpoint import CheckpointManager, TrainingCheckpoint


def _make_checkpoint(epoch: int) -> TrainingCheckpoint:
    rng = np.random.default_rng(epoch)
    model = LogisticRegression([4, 5, 6], rng=rng)
    optimizer = Adam(model.parameters(), lr=0.01)
    return TrainingCheckpoint.capture(model, optimizer, epoch=epoch,
                                      global_step=epoch * 10, rng=rng)


@pytest.mark.resilience
class TestConcurrentWriter:
    def test_reader_never_sees_torn_or_vanished_files(self, tmp_path):
        """Hammer latest_valid while a writer saves + prunes aggressively.

        keep_last=1 maximises the prune churn: almost every save deletes
        the file a racing reader may be about to open.  Every successful
        read must be a complete, checksum-verified checkpoint.
        """
        manager = CheckpointManager(tmp_path, keep_last=1)
        rounds = 30
        failures = []
        done = threading.Event()

        def writer():
            try:
                for epoch in range(rounds):
                    manager.save(_make_checkpoint(epoch))
            except Exception as exc:  # surfaced by the main thread
                failures.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        reads = 0
        corrupt_seen = []
        try:
            while not done.is_set() or reads == 0:
                found = manager.latest_valid(
                    on_corrupt=lambda p, e: corrupt_seen.append((p, e)))
                if found is None:
                    continue
                checkpoint, path = found
                # A torn read would have failed the checksum inside
                # load; everything that comes back must be complete.
                assert checkpoint.model_state
                assert checkpoint.optimizer_state
                assert 0 <= checkpoint.epoch < rounds
                assert checkpoint.global_step == checkpoint.epoch * 10
                reads += 1
        finally:
            thread.join()
        assert not failures
        assert reads > 0
        # Atomic writes mean corruption is *impossible* here, not merely
        # tolerated: the corrupt hook must never have fired.
        assert corrupt_seen == []

    def test_reader_survives_prune_race_deterministically(self, tmp_path):
        """Reproduce the exact race: the listed path vanishes pre-read."""
        manager = CheckpointManager(tmp_path, keep_last=2)
        manager.save(_make_checkpoint(0))
        manager.save(_make_checkpoint(1))

        real_load = TrainingCheckpoint.load
        state = {"pruned": False}

        def racing_load(path):
            # First load attempt: a concurrent writer prunes *both*
            # listed files before the read lands.
            if not state["pruned"]:
                state["pruned"] = True
                for doomed in manager.checkpoints():
                    doomed.unlink()
                manager.save(_make_checkpoint(2))
            return real_load(path)

        TrainingCheckpoint.load = staticmethod(racing_load)
        try:
            found = manager.latest_valid()
        finally:
            TrainingCheckpoint.load = real_load
        # The stale listing had only vanished files -> no crash, and the
        # next call sees the new checkpoint.
        assert found is None
        checkpoint, _ = manager.latest_valid()
        assert checkpoint.epoch == 2

    def test_final_state_is_newest_epoch(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=3)
        for epoch in range(5):
            manager.save(_make_checkpoint(epoch))
        checkpoint, path = manager.latest_valid()
        assert checkpoint.epoch == 4
        assert path == manager.path_for(4)
