"""RecoveryPolicy / DivergenceGuard semantics: strikes, rollback, give-up."""

import numpy as np
import pytest

from repro.models import FNN
from repro.nn.optim import Adam, SGD
from repro.obs import EventBus, MemorySink
from repro.resilience import DivergenceGuard, RecoveryPolicy

pytestmark = pytest.mark.resilience


@pytest.fixture()
def guarded(tiny_dataset, rng):
    model = FNN(tiny_dataset.cardinalities, embed_dim=4, hidden_dims=(8,),
                rng=rng)
    opt = Adam(model.parameters(), lr=1e-2)
    sink = MemorySink()
    bus = EventBus([sink])
    return model, opt, sink, bus


class TestRecoveryPolicy:
    def test_defaults_valid(self):
        policy = RecoveryPolicy()
        assert policy.max_batch_skips >= 0
        assert 0 < policy.lr_factor <= 1

    @pytest.mark.parametrize("kwargs", [
        {"max_batch_skips": -1},
        {"max_restarts": -1},
        {"lr_factor": 0.0},
        {"lr_factor": 1.5},
    ])
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kwargs)


class TestDivergenceGuard:
    def test_loss_and_gradient_checks(self, guarded):
        model, opt, sink, bus = guarded
        guard = DivergenceGuard(RecoveryPolicy(), model, opt)
        assert guard.loss_ok(0.5)
        assert not guard.loss_ok(float("nan"))
        assert not guard.loss_ok(float("inf"))
        assert guard.gradients_ok()  # no grads set
        params = model.parameters()
        params[0].grad = np.zeros_like(params[0].data)
        assert guard.gradients_ok()
        params[0].grad[...] = np.nan
        assert not guard.gradients_ok()

    def test_gradient_check_can_be_disabled(self, guarded):
        model, opt, _, _ = guarded
        policy = RecoveryPolicy(check_gradients=False)
        guard = DivergenceGuard(policy, model, opt)
        params = model.parameters()
        params[0].grad = np.full_like(params[0].data, np.nan)
        assert guard.gradients_ok()

    def test_strikes_emit_skip_events(self, guarded):
        model, opt, sink, bus = guarded
        guard = DivergenceGuard(RecoveryPolicy(max_batch_skips=5), model, opt,
                                emit=bus.emit)
        guard.record_good()
        guard.strike("non_finite_loss", epoch=0, step=3, loss=float("nan"))
        guard.strike("non_finite_loss", epoch=0, step=4, loss=float("nan"))
        events = sink.of_type("recovery")
        assert [e.payload["action"] for e in events] == ["skip", "skip"]
        assert events[0].payload["strikes"] == 1
        assert events[1].payload["strikes"] == 2

    def test_rollback_restores_state_and_halves_lr(self, guarded):
        model, opt, sink, bus = guarded
        policy = RecoveryPolicy(max_batch_skips=0, max_restarts=3,
                                lr_factor=0.5)
        guard = DivergenceGuard(policy, model, opt, emit=bus.emit)
        guard.record_good()
        good = model.state_dict()
        for param in model.parameters():
            param.data = param.data + 7.0
        guard.strike("non_finite_loss", epoch=1, step=9, loss=float("inf"))
        restored = model.state_dict()
        for key in good:
            np.testing.assert_array_equal(restored[key], good[key])
        assert opt.param_groups[0]["lr"] == pytest.approx(5e-3)
        actions = [e.payload["action"] for e in sink.of_type("recovery")]
        assert actions == ["skip", "rollback"]

    def test_rollback_callback_receives_extras(self, guarded):
        model, opt, _, _ = guarded
        seen = []
        guard = DivergenceGuard(RecoveryPolicy(max_batch_skips=0), model, opt,
                                on_rollback=seen.append)
        guard.record_good(extras={"global_step": 42})
        guard.strike("non_finite_loss")
        assert seen == [{"global_step": 42}]

    def test_gives_up_after_max_restarts(self, guarded):
        model, opt, _, _ = guarded
        policy = RecoveryPolicy(max_batch_skips=0, max_restarts=1)
        guard = DivergenceGuard(policy, model, opt)
        guard.record_good()
        guard.strike("non_finite_loss", epoch=0, step=1)  # rollback 1
        with pytest.raises(RuntimeError, match="did not recover"):
            guard.strike("non_finite_loss", epoch=0, step=2)

    def test_no_snapshot_raises_immediately(self, guarded):
        model, opt, _, _ = guarded
        guard = DivergenceGuard(RecoveryPolicy(max_batch_skips=0), model, opt)
        with pytest.raises(RuntimeError, match="nothing to roll back"):
            guard.strike("non_finite_loss")

    def test_multiple_optimizers_roll_back_together(self, guarded):
        model, _, _, _ = guarded
        params = model.parameters()
        opt_a = Adam(params[:1], lr=1e-2)
        opt_b = SGD(params[1:], lr=1e-1)
        guard = DivergenceGuard(RecoveryPolicy(max_batch_skips=0), model,
                                [opt_a, opt_b])
        guard.record_good()
        guard.strike("non_finite_loss")
        assert opt_a.param_groups[0]["lr"] == pytest.approx(5e-3)
        assert opt_b.param_groups[0]["lr"] == pytest.approx(5e-2)

    def test_record_good_resets_strikes(self, guarded):
        model, opt, _, _ = guarded
        guard = DivergenceGuard(RecoveryPolicy(max_batch_skips=2), model, opt)
        guard.record_good()
        guard.strike("non_finite_loss")
        guard.strike("non_finite_loss")
        assert guard.strikes == 2
        guard.record_good()
        assert guard.strikes == 0
