"""The data-layer fault zoo: flaky IO, file mangling, chunk crashes.

These injectors drive the ingest chaos suite (and the CI ``ingest-chaos``
job); here each one's own contract is pinned down.
"""

import pytest

from repro.resilience import (
    CrashAtChunk,
    FlakyFile,
    InjectedCrash,
    inject_garbage_lines,
    truncate_file,
)

pytestmark = pytest.mark.resilience


@pytest.fixture
def sample(tmp_path):
    path = tmp_path / "log.csv"
    path.write_text("label,I1\n1,2\n0,3\n1,4\n")
    return path


class TestFlakyFile:
    def test_injects_then_recovers(self, sample):
        flaky = FlakyFile(fail_reads=2)
        handle = flaky(str(sample))
        with pytest.raises(OSError):
            handle.readline()
        with pytest.raises(OSError):
            handle.readline()
        assert handle.readline() == b"label,I1\n"
        assert flaky.injected == 2

    def test_open_failures(self, sample):
        flaky = FlakyFile(fail_reads=0, fail_opens=1)
        with pytest.raises(OSError):
            flaky(str(sample))
        handle = flaky(str(sample))
        assert handle.readline() == b"label,I1\n"
        assert flaky.injected == 1

    def test_handle_delegates(self, sample):
        handle = FlakyFile(fail_reads=0)(str(sample))
        handle.seek(0)
        assert handle.readable()
        handle.close()


class TestTruncateFile:
    def test_drops_exact_bytes(self, sample):
        size = sample.stat().st_size
        new_size = truncate_file(sample, 3)
        assert new_size == size - 3 == sample.stat().st_size
        assert not sample.read_bytes().endswith(b"\n")

    def test_cannot_go_negative(self, sample):
        assert truncate_file(sample, 10_000) == 0
        with pytest.raises(ValueError):
            truncate_file(sample, -1)


class TestInjectGarbageLines:
    def test_splices_at_positions(self, sample):
        inserted = inject_garbage_lines(sample, {1: b"garbage",
                                                 3: b"more"})
        assert inserted == 2
        lines = sample.read_bytes().splitlines()
        assert lines[1] == b"garbage"
        # original index 3 shifted by the earlier insert
        assert b"more" in lines
        assert len(lines) == 6

    def test_rejects_out_of_range(self, sample):
        with pytest.raises(ValueError, match="outside"):
            inject_garbage_lines(sample, {99: b"x"})

    def test_appends_newline_to_raw_bytes(self, sample):
        inject_garbage_lines(sample, {0: b"\xff\xfe raw bytes"})
        assert sample.read_bytes().startswith(b"\xff\xfe raw bytes\n")


class TestCrashAtChunk:
    def test_fires_once_at_threshold(self):
        crash = CrashAtChunk(at_chunk=2)
        crash("fit", 0)
        with pytest.raises(InjectedCrash):
            crash("fit", 1)
        assert crash.fired
        crash("fit", 2)  # disarmed

    def test_stage_filter(self):
        crash = CrashAtChunk(at_chunk=1, stage="encode")
        crash("fit", 0)
        crash("fit", 1)
        with pytest.raises(InjectedCrash):
            crash("encode", 0)
