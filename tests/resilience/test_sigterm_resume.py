"""SIGTERM-killed training resumed bit-for-bit, through the real CLI.

The PR-2 checkpoint layer promises that a killed-and-resumed run is
indistinguishable from an uninterrupted one.  This test proves it at the
process level: ``repro train`` is killed with SIGTERM mid-run, resumed
with ``--resume``, and its metrics JSON must be byte-identical to a run
that was never interrupted.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro

SAMPLES = "30000"  # ~3s of training: 8 epochs, killable mid-run


def _env():
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = (src if not env.get("PYTHONPATH")
                         else src + os.pathsep + env["PYTHONPATH"])
    return env


def _train_argv(ckpt_dir, out, resume=False):
    argv = [sys.executable, "-m", "repro", "train", "FNN",
            "--samples", SAMPLES, "--checkpoint-dir", str(ckpt_dir),
            "--out", str(out)]
    if resume:
        argv.append("--resume")
    return argv


@pytest.mark.resilience
def test_sigterm_killed_train_resumes_bit_for_bit(tmp_path):
    # Ground truth: one uninterrupted run.
    clean_out = tmp_path / "clean.json"
    subprocess.run(_train_argv(tmp_path / "ck_clean", clean_out),
                   env=_env(), check=True, capture_output=True, timeout=120)

    # Interrupted run: SIGTERM as soon as the first checkpoint lands.
    ckpt_dir = tmp_path / "ck_killed"
    killed_out = tmp_path / "killed.json"
    proc = subprocess.Popen(_train_argv(ckpt_dir, killed_out), env=_env(),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.time() + 60
    while time.time() < deadline:
        if list(ckpt_dir.glob("ckpt-*.npz")) or proc.poll() is not None:
            break
        time.sleep(0.02)
    assert proc.poll() is None, "run finished before it could be killed"
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGTERM
    assert not killed_out.exists()  # died before writing metrics

    # Resume must complete and reproduce the clean run exactly.
    resumed = subprocess.run(
        _train_argv(ckpt_dir, killed_out, resume=True), env=_env(),
        check=True, capture_output=True, text=True, timeout=120)
    assert "resum" in resumed.stdout.lower() or killed_out.exists()
    assert killed_out.read_bytes() == clean_out.read_bytes()
