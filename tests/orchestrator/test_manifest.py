"""Campaign manifest: atomic persistence, digests, resume validation."""

import json

import pytest

from repro.orchestrator import (CampaignManifest, CampaignResumeError,
                                JobState, ManifestError, build_campaign,
                                sha256_of_file)
from repro.orchestrator.manifest import MANIFEST_VERSION


@pytest.fixture
def spec():
    return build_campaign(["LR"], ["criteo"], optinter_chain=True)


class TestLifecycle:
    def test_create_is_all_pending(self, spec):
        manifest = CampaignManifest.create(spec)
        assert set(manifest.jobs) == set(spec.job_ids())
        assert manifest.counts()["pending"] == len(spec.jobs)
        assert not manifest.all_terminal()

    def test_save_load_round_trip(self, spec, tmp_path):
        manifest = CampaignManifest.create(spec)
        state = manifest.jobs["train:LR:criteo:s0"]
        state.status = "quarantined"
        state.attempts = 3
        state.exit_codes = [3, 3, 1]
        state.reasons = ["transient_exit", "transient_exit",
                         "deterministic_failure"]
        state.quarantine_reason = "deterministic_failure"
        path = tmp_path / "manifest.json"
        manifest.save(path)
        loaded = CampaignManifest.load(path)
        assert loaded.fingerprint == manifest.fingerprint
        assert loaded.jobs["train:LR:criteo:s0"] == state

    def test_counts_and_terminal(self, spec):
        manifest = CampaignManifest.create(spec)
        for state in manifest.jobs.values():
            state.status = "completed"
        assert manifest.all_terminal()
        assert manifest.counts()["completed"] == len(spec.jobs)


class TestValidation:
    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CampaignManifest.load(tmp_path / "nope.json")

    def test_load_unparseable(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{truncated")
        with pytest.raises(ManifestError, match="unparseable"):
            CampaignManifest.load(path)

    def test_load_future_version(self, spec, tmp_path):
        path = tmp_path / "manifest.json"
        CampaignManifest.create(spec).save(path)
        raw = json.loads(path.read_text())
        raw["version"] = MANIFEST_VERSION + 1
        path.write_text(json.dumps(raw))
        with pytest.raises(ManifestError, match="version"):
            CampaignManifest.load(path)

    def test_bad_status_rejected(self):
        with pytest.raises(ManifestError, match="status"):
            JobState.from_dict({"status": "exploded"})

    def test_fingerprint_mismatch_refused(self, spec):
        manifest = CampaignManifest.create(spec)
        other = build_campaign(["FNN"], ["criteo"])
        with pytest.raises(CampaignResumeError, match="fingerprint"):
            manifest.validate_against(other)

    def test_matching_spec_accepted(self, spec):
        CampaignManifest.create(spec).validate_against(spec)


class TestResultDigest:
    def test_verify_result_matches(self, spec, tmp_path):
        manifest = CampaignManifest.create(spec)
        result = tmp_path / "result.json"
        result.write_text('{"auc": 0.5}\n')
        state = manifest.jobs["train:LR:criteo:s0"]
        state.status = "completed"
        state.result_path = str(result)
        state.result_sha256 = sha256_of_file(result)
        assert manifest.verify_result("train:LR:criteo:s0")

    def test_verify_result_detects_tamper(self, spec, tmp_path):
        manifest = CampaignManifest.create(spec)
        result = tmp_path / "result.json"
        result.write_text('{"auc": 0.5}\n')
        state = manifest.jobs["train:LR:criteo:s0"]
        state.status = "completed"
        state.result_path = str(result)
        state.result_sha256 = sha256_of_file(result)
        result.write_text('{"auc": 0.9}\n')  # bit-rot / tampering
        assert not manifest.verify_result("train:LR:criteo:s0")

    def test_verify_result_missing_file(self, spec, tmp_path):
        manifest = CampaignManifest.create(spec)
        state = manifest.jobs["train:LR:criteo:s0"]
        state.status = "completed"
        state.result_path = str(tmp_path / "gone.json")
        state.result_sha256 = "0" * 64
        assert not manifest.verify_result("train:LR:criteo:s0")

    def test_non_completed_never_verifies(self, spec):
        manifest = CampaignManifest.create(spec)
        assert not manifest.verify_result("train:LR:criteo:s0")


class TestAtomicity:
    def test_no_tmp_litter_after_save(self, spec, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = CampaignManifest.create(spec)
        for _ in range(5):
            manifest.save(path)
        leftovers = [p for p in tmp_path.iterdir() if p.name != path.name]
        assert leftovers == []

    def test_saved_manifest_is_sorted_and_newline_terminated(self, spec,
                                                             tmp_path):
        path = tmp_path / "manifest.json"
        CampaignManifest.create(spec).save(path)
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(json.loads(text), indent=2,
                                  sort_keys=True) + "\n"
