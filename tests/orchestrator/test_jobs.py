"""Campaign/job specs: validation, dependency graph, fingerprinting."""

import pytest

from repro.experiments.configs import default_config
from repro.orchestrator import (CampaignSpec, CampaignSpecError, JobSpec,
                                build_campaign, config_for)


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(job_id="j1", kind="train", model="LR", seed=3,
                       n_samples=500, inject={"fault": "crash", "times": 2})
        assert JobSpec.from_dict(spec.as_dict()) == spec

    def test_kind_validated(self):
        with pytest.raises(CampaignSpecError):
            JobSpec(job_id="j1", kind="dance")

    def test_train_requires_model(self):
        with pytest.raises(CampaignSpecError):
            JobSpec(job_id="j1", kind="train")

    def test_retrain_requires_arch_from(self):
        with pytest.raises(CampaignSpecError):
            JobSpec(job_id="j1", kind="retrain")

    def test_arch_from_implies_dependency(self):
        spec = JobSpec(job_id="r", kind="retrain", arch_from="s")
        assert "s" in spec.depends_on

    def test_empty_id_rejected(self):
        with pytest.raises(CampaignSpecError):
            JobSpec(job_id="", kind="search")


class TestCampaignSpec:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(CampaignSpecError, match="duplicate"):
            CampaignSpec(jobs=[JobSpec(job_id="a", kind="search"),
                               JobSpec(job_id="a", kind="search")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown"):
            CampaignSpec(jobs=[JobSpec(job_id="a", kind="search",
                                       depends_on=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(CampaignSpecError, match="cycle"):
            CampaignSpec(jobs=[
                JobSpec(job_id="a", kind="search", depends_on=("b",)),
                JobSpec(job_id="b", kind="search", depends_on=("a",)),
            ])

    def test_with_inject_returns_modified_copy(self):
        spec = CampaignSpec(jobs=[JobSpec(job_id="a", kind="search")])
        injected = spec.with_inject("a", {"fault": "fail"})
        assert injected.job("a").inject == {"fault": "fail"}
        assert spec.job("a").inject is None  # original untouched

    def test_with_inject_unknown_job(self):
        spec = CampaignSpec(jobs=[JobSpec(job_id="a", kind="search")])
        with pytest.raises(KeyError):
            spec.with_inject("ghost", {"fault": "fail"})


class TestFingerprint:
    def test_stable_across_instances(self):
        a = build_campaign(["LR"], ["criteo"], optinter_chain=True)
        b = build_campaign(["LR"], ["criteo"], optinter_chain=True)
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_spec_changes(self):
        base = build_campaign(["LR"], ["criteo"])
        assert (base.fingerprint()
                != build_campaign(["LR"], ["criteo"],
                                  seeds=(1,)).fingerprint())
        assert (base.fingerprint()
                != build_campaign(["FNN"], ["criteo"]).fingerprint())

    def test_inject_is_part_of_fingerprint(self):
        base = build_campaign(["LR"], ["criteo"])
        chaotic = base.with_inject("train:LR:criteo:s0", {"fault": "fail"})
        assert base.fingerprint() != chaotic.fingerprint()


class TestBuildCampaign:
    def test_grid_expansion(self):
        spec = build_campaign(["LR", "FNN"], ["criteo", "avazu"],
                              seeds=(0, 1))
        assert len(spec.jobs) == 2 * 2 * 2
        assert "train:FNN:avazu:s1" in spec.job_ids()

    def test_optinter_chain_adds_dependent_pair(self):
        spec = build_campaign(["LR"], ["criteo"], optinter_chain=True)
        retrain = spec.job("retrain:criteo:s0")
        assert retrain.arch_from == "search:criteo:s0"
        assert "search:criteo:s0" in retrain.depends_on

    def test_twelve_job_acceptance_shape(self):
        # The chaos-test campaign: 2 datasets x 2 seeds x (train+search+
        # retrain) == 12 supervised jobs.
        spec = build_campaign(["LR"], ["criteo", "avazu"], seeds=(0, 1),
                              optinter_chain=True)
        assert len(spec.jobs) == 12


class TestConfigFor:
    def test_overrides_apply(self):
        spec = JobSpec(job_id="j", kind="train", model="LR", seed=9,
                       n_samples=321, epochs=2, search_epochs=1)
        config = config_for(spec)
        assert config.seed == 9
        assert config.n_samples == 321
        assert config.epochs == 2
        assert config.search_epochs == 1

    def test_defaults_match_scale_preset(self):
        spec = JobSpec(job_id="j", kind="search", dataset="avazu")
        config = config_for(spec)
        preset = default_config("avazu", "quick")
        assert config.n_samples == preset.n_samples
        assert config.dataset == "avazu"
