"""Supervisor behaviour: worker protocol, retries, watchdog, guardrails.

The subprocess-driving tests are marked ``orchestrator`` (the
orchestrator-chaos CI job); jobs are shrunk to hundreds of samples and
one epoch so each worker lives for a second or two.
"""

import json
import os
import time

import pytest

from repro.obs.events import EventBus, MemorySink
from repro.obs.metrics import MetricsRegistry
from repro.orchestrator import (CampaignResumeError, CampaignSpec,
                                CrashingJob, DiskPressure, FailingJob,
                                HangingJob, JobSpec, ResourceGuard,
                                SlowHeartbeat, Supervisor, SupervisorConfig,
                                build_campaign, find_orphans, parse_inject,
                                pid_is_our_worker)
from repro.orchestrator import worker as worker_mod
from repro.orchestrator.manifest import CampaignManifest
from repro.orchestrator.worker import Heartbeat, job_dir_for


def tiny_campaign(*models, seeds=(0,), optinter_chain=False):
    return build_campaign(models or ["LR"], ["criteo"], seeds=seeds,
                          n_samples=300, epochs=1, search_epochs=1,
                          optinter_chain=optinter_chain)


def fast_config(**overrides):
    defaults = dict(workers=2, max_retries=2, retry_base_delay=0.05,
                    retry_max_delay=0.2, job_timeout_s=60.0,
                    term_grace_s=1.0, heartbeat_interval_s=0.1,
                    heartbeat_timeout_s=30.0, poll_interval_s=0.02)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


class TestHeartbeat:
    def test_beat_writes_liveness_json(self, tmp_path):
        hb = Heartbeat(tmp_path / "hb.json", interval_s=10.0, attempt=2)
        hb.beat()
        payload = json.loads((tmp_path / "hb.json").read_text())
        assert payload["pid"] == os.getpid()
        assert payload["attempt"] == 2
        assert payload["beats"] == 1
        assert payload["time"] > 0

    def test_stall_after_freezes_file(self, tmp_path):
        hb = Heartbeat(tmp_path / "hb.json", interval_s=10.0, attempt=1)
        hb.stall_after(1)
        hb.beat()
        first = (tmp_path / "hb.json").read_text()
        hb.beat()
        hb.beat()
        assert (tmp_path / "hb.json").read_text() == first


class TestWorkerProtocol:
    """The typed exit codes, driven through worker.main in-process."""

    def _spec_path(self, tmp_path, spec):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.as_dict()))
        return str(path)

    def test_unreadable_spec_is_operator_error(self, tmp_path):
        code = worker_mod.main([str(tmp_path / "ghost.json"),
                                "--workdir", str(tmp_path)])
        assert code == 2

    def test_fail_fault_exits_deterministic(self, tmp_path):
        spec = JobSpec(job_id="j", kind="train", model="LR", n_samples=300,
                       epochs=1, inject=FailingJob().to_inject())
        with pytest.raises(SystemExit) as info:
            worker_mod.main([self._spec_path(tmp_path, spec),
                             "--workdir", str(tmp_path)])
        assert info.value.code == 1

    def test_crash_fault_exits_transient_then_recovers(self, tmp_path):
        spec = JobSpec(job_id="j", kind="train", model="LR", n_samples=300,
                       epochs=1, inject=CrashingJob(times=1).to_inject())
        args = [self._spec_path(tmp_path, spec), "--workdir", str(tmp_path)]
        with pytest.raises(SystemExit) as info:
            worker_mod.main(args + ["--attempt", "1"])
        assert info.value.code == 3
        assert worker_mod.main(args + ["--attempt", "2"]) == 0
        result = job_dir_for(tmp_path, "j") / "result.json"
        assert json.loads(result.read_text())["job_id"] == "j"

    def test_missing_dependency_artifact_is_operator_error(self, tmp_path,
                                                           capsys):
        spec = JobSpec(job_id="r", kind="retrain", arch_from="s",
                       n_samples=300, epochs=1)
        code = worker_mod.main([self._spec_path(tmp_path, spec),
                                "--workdir", str(tmp_path)])
        assert code == 2
        assert "has not produced" in capsys.readouterr().err

    def test_result_bytes_deterministic(self, tmp_path):
        spec = JobSpec(job_id="j", kind="train", model="LR", n_samples=300,
                       epochs=1)
        runs = []
        for sub in ("a", "b"):
            wd = tmp_path / sub
            path = wd / "spec.json"
            path.parent.mkdir()
            path.write_text(json.dumps(spec.as_dict()))
            assert worker_mod.main([str(path), "--workdir", str(wd)]) == 0
            runs.append((job_dir_for(wd, "j") / "result.json").read_bytes())
        assert runs[0] == runs[1]


class TestResourceGuard:
    def test_default_reads_real_disk(self, tmp_path):
        guard = ResourceGuard(tmp_path, min_free_bytes=1)
        assert guard.free_bytes() > 0
        assert guard.ok_to_launch()

    def test_injected_pressure(self, tmp_path):
        guard = ResourceGuard(tmp_path, min_free_bytes=100,
                              free_bytes_fn=DiskPressure(low_checks=2))
        assert not guard.ok_to_launch()
        assert not guard.ok_to_launch()
        assert guard.ok_to_launch()  # pressure cleared


class TestParseInject:
    def test_known_faults(self):
        assert parse_inject("crash:2") == CrashingJob(times=2).to_inject()
        assert parse_inject("fail") == FailingJob().to_inject()
        assert parse_inject("hang") == HangingJob().to_inject()
        assert (parse_inject("slow_heartbeat:3")
                == SlowHeartbeat(after_beats=3).to_inject())

    def test_unknown_fault(self):
        with pytest.raises(ValueError, match="unknown fault"):
            parse_inject("gremlins")


class TestPidVerification:
    def test_own_pid_is_not_a_worker(self):
        # Alive, but the cmdline is pytest's — must not be reapable.
        assert not pid_is_our_worker(os.getpid())

    def test_dead_pid(self):
        # Max pid is bounded well below this on Linux.
        assert not pid_is_our_worker(2 ** 22 + 1)


class TestManifestGuards:
    def test_fresh_run_refuses_existing_manifest(self, tmp_path):
        spec = tiny_campaign()
        CampaignManifest.create(spec).save(tmp_path / "manifest.json")
        with pytest.raises(CampaignResumeError, match="already exists"):
            Supervisor(spec, tmp_path, fast_config()).run(resume=False)

    def test_resume_requires_manifest(self, tmp_path):
        with pytest.raises(CampaignResumeError, match="does not exist"):
            Supervisor(tiny_campaign(), tmp_path,
                       fast_config()).run(resume=True)

    def test_resume_refuses_foreign_fingerprint(self, tmp_path):
        CampaignManifest.create(
            tiny_campaign("FNN")).save(tmp_path / "manifest.json")
        with pytest.raises(CampaignResumeError, match="fingerprint"):
            Supervisor(tiny_campaign(), tmp_path,
                       fast_config()).run(resume=True)


@pytest.mark.orchestrator
class TestSupervisedExecution:
    def test_crash_retries_then_completes(self, tmp_path):
        spec = tiny_campaign().with_inject(
            "train:LR:criteo:s0", CrashingJob(times=1).to_inject())
        sink = MemorySink()
        report = Supervisor(spec, tmp_path, fast_config(),
                            bus=EventBus([sink])).run()
        assert report.ok
        state = CampaignManifest.load(
            tmp_path / "manifest.json").jobs["train:LR:criteo:s0"]
        assert state.attempts == 2
        assert state.exit_codes == [3, 0]
        types = [e.type for e in sink.events]
        assert "job_retry" in types and "job_done" in types

    def test_deterministic_failure_quarantines_campaign_continues(
            self, tmp_path):
        spec = tiny_campaign("LR", "FNN").with_inject(
            "train:LR:criteo:s0", FailingJob().to_inject())
        metrics = MetricsRegistry()
        report = Supervisor(spec, tmp_path, fast_config(),
                            metrics=metrics).run()
        assert report.completed == 1 and report.quarantined == 1
        assert report.completed + report.quarantined == report.total
        state = CampaignManifest.load(
            tmp_path / "manifest.json").jobs["train:LR:criteo:s0"]
        assert state.quarantine_reason == "deterministic_failure"
        assert state.attempts == 1  # no retry for exit code 1
        assert metrics.counter("orchestrate.quarantined").value == 1

    def test_crash_loop_quarantined_after_max_retries(self, tmp_path):
        spec = tiny_campaign().with_inject(
            "train:LR:criteo:s0", CrashingJob(times=99).to_inject())
        report = Supervisor(spec, tmp_path,
                            fast_config(max_retries=1)).run()
        assert report.quarantined == 1
        state = CampaignManifest.load(
            tmp_path / "manifest.json").jobs["train:LR:criteo:s0"]
        assert state.quarantine_reason == "crash_loop"
        assert state.exit_codes == [3, 3]

    def test_hanging_job_reaped_by_timeout_escalation(self, tmp_path):
        # The fault ignores SIGTERM, so completion proves the escalation
        # went all the way to SIGKILL on the process group.
        spec = tiny_campaign().with_inject(
            "train:LR:criteo:s0", HangingJob(ignore_sigterm=True).to_inject())
        metrics = MetricsRegistry()
        started = time.time()
        report = Supervisor(spec, tmp_path,
                            fast_config(job_timeout_s=1.5, max_retries=0),
                            metrics=metrics).run()
        assert time.time() - started < 30
        assert report.quarantined == 1
        manifest = CampaignManifest.load(tmp_path / "manifest.json")
        state = manifest.jobs["train:LR:criteo:s0"]
        assert "timeout" in state.reasons
        assert state.exit_codes[0] < 0  # killed by signal
        assert metrics.counter("orchestrate.timeouts").value == 1
        assert find_orphans(manifest) == []

    def test_stale_heartbeat_reaped_by_watchdog(self, tmp_path):
        # Wall-clock budget is generous; only the heartbeat watchdog can
        # reap this worker.
        spec = tiny_campaign().with_inject(
            "train:LR:criteo:s0", SlowHeartbeat(after_beats=1).to_inject())
        metrics = MetricsRegistry()
        report = Supervisor(spec, tmp_path,
                            fast_config(heartbeat_timeout_s=1.0,
                                        max_retries=0),
                            metrics=metrics).run()
        assert report.quarantined == 1
        state = CampaignManifest.load(
            tmp_path / "manifest.json").jobs["train:LR:criteo:s0"]
        assert "hung" in state.reasons
        assert metrics.counter("orchestrate.hung_reaped").value == 1

    def test_dependency_failure_cascades_without_launch(self, tmp_path):
        spec = tiny_campaign(optinter_chain=True).with_inject(
            "search:criteo:s0", FailingJob().to_inject())
        report = Supervisor(spec, tmp_path, fast_config()).run()
        manifest = CampaignManifest.load(tmp_path / "manifest.json")
        retrain = manifest.jobs["retrain:criteo:s0"]
        assert retrain.status == "quarantined"
        assert retrain.quarantine_reason == "dependency_failed"
        assert retrain.attempts == 0  # never launched
        assert report.completed + report.quarantined == report.total

    def test_disk_pressure_defers_launch_but_campaign_finishes(self,
                                                               tmp_path):
        pressure = DiskPressure(low_checks=3)
        metrics = MetricsRegistry()
        report = Supervisor(tiny_campaign(), tmp_path, fast_config(),
                            metrics=metrics, free_bytes_fn=pressure).run()
        assert report.ok
        assert pressure.calls > 3  # guard kept probing until it cleared
        assert metrics.counter("orchestrate.throttled").value >= 1

    def test_span_tree_covers_jobs_and_attempts(self, tmp_path):
        spec = tiny_campaign().with_inject(
            "train:LR:criteo:s0", CrashingJob(times=1).to_inject())
        sink = MemorySink()
        Supervisor(spec, tmp_path, fast_config(), bus=EventBus([sink])).run()
        spans = [e.payload for e in sink.events if e.type == "span"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        assert len(by_name["campaign.run"]) == 1
        assert len(by_name["campaign.job"]) == 1
        assert len(by_name["campaign.attempt"]) == 2  # crash + success
        run = by_name["campaign.run"][0]
        job = by_name["campaign.job"][0]
        assert job["parent_id"] == run["span_id"]
        assert all(a["parent_id"] == job["span_id"]
                   for a in by_name["campaign.attempt"])
