"""The orchestrator acceptance proof (ISSUE 9).

A 12-job campaign (2 datasets × 2 seeds × train + search→retrain) with
injected crashes and one hanging job is started through the real CLI,
the supervisor is SIGKILLed mid-campaign (workers survive as orphans),
and ``--resume`` must finish with:

* exact accounting — completed + quarantined == total,
* zero orphan processes (every recorded pid verified dead),
* the manifest digest-matching every result file on disk,
* per-job ``result.json`` **bit-identical** to an uninterrupted serial
  in-process run for every job that never had a fault injected.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.obs.events import EventBus, MemorySink
from repro.orchestrator import (CrashingJob, HangingJob, Supervisor,
                                SupervisorConfig, build_campaign,
                                execute_job, find_orphans, job_dir_for,
                                pid_is_our_worker)
from repro.orchestrator.manifest import CampaignManifest

pytestmark = pytest.mark.orchestrator

MODELS = ["LR"]
DATASETS = ["criteo", "avazu"]
SEEDS = (0, 1)
SAMPLES, EPOCHS, SEARCH_EPOCHS = 300, 1, 1
INJECTIONS = {
    "train:LR:criteo:s0": CrashingJob(times=1).to_inject(),
    "search:avazu:s0": CrashingJob(times=1).to_inject(),
    "train:LR:avazu:s1": HangingJob(ignore_sigterm=True).to_inject(),
}
#: the hanging job can only quarantine; everything else must complete.
EXPECT_QUARANTINED = {"train:LR:avazu:s1"}
JOB_TIMEOUT_S = 6.0
MAX_RETRIES = 1


def chaos_spec():
    spec = build_campaign(MODELS, DATASETS, seeds=SEEDS, n_samples=SAMPLES,
                          epochs=EPOCHS, search_epochs=SEARCH_EPOCHS,
                          optinter_chain=True)
    for job_id, inject in INJECTIONS.items():
        spec = spec.with_inject(job_id, inject)
    return spec


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Uninterrupted serial ground truth: every job in-process, in order.

    Runs the *clean* spec (no injections) — faults only change how many
    attempts a job needs, never what a successful job computes, so the
    supervised runs must reproduce these bytes exactly.
    """
    workdir = tmp_path_factory.mktemp("baseline")
    spec = build_campaign(MODELS, DATASETS, seeds=SEEDS, n_samples=SAMPLES,
                          epochs=EPOCHS, search_epochs=SEARCH_EPOCHS,
                          optinter_chain=True)
    results = {}
    for job in spec.jobs:  # build order puts dependencies first
        from repro.orchestrator.worker import write_result

        metrics = execute_job(job, workdir)
        path = write_result(job, workdir, metrics)
        results[job.job_id] = path.read_bytes()
    return results


def _campaign_argv(workdir):
    argv = [sys.executable, "-m", "repro", "campaign",
            "--workdir", str(workdir),
            "--models", *MODELS, "--datasets", *DATASETS,
            "--seeds", *(str(s) for s in SEEDS),
            "--samples", str(SAMPLES), "--epochs", str(EPOCHS),
            "--search-epochs", str(SEARCH_EPOCHS), "--optinter-chain",
            "--workers", "3", "--max-retries", str(MAX_RETRIES),
            "--retry-base-delay", "0.05",
            "--job-timeout", str(JOB_TIMEOUT_S)]
    for job_id, inject in INJECTIONS.items():
        fault = inject["fault"]
        if fault == "crash":
            fault += f":{inject['times']}"
        argv += ["--inject", f"{job_id}={fault}"]
    return argv


def _cli_env():
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = (src if not env.get("PYTHONPATH")
                         else src + os.pathsep + env["PYTHONPATH"])
    return env


def _completed_count(manifest_path):
    try:
        manifest = CampaignManifest.load(manifest_path)
    except Exception:  # not written yet
        return 0
    return manifest.counts()["completed"]


def test_killed_campaign_resumes_with_exact_accounting(tmp_path, baseline):
    spec = chaos_spec()
    workdir = tmp_path / "campaign"
    manifest_path = workdir / "manifest.json"

    # Phase 1: start the chaos campaign through the real CLI and SIGKILL
    # the *supervisor* (not its workers) once real progress exists.
    proc = subprocess.Popen(_campaign_argv(workdir), env=_cli_env(),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    deadline = time.time() + 120
    while time.time() < deadline:
        if _completed_count(manifest_path) >= 2 or proc.poll() is not None:
            break
        time.sleep(0.1)
    else:
        proc.kill()
        proc.wait()
        pytest.fail("campaign made no progress within 120s")
    if proc.poll() is None:
        os.kill(proc.pid, signal.SIGKILL)
    proc.wait()

    interrupted = CampaignManifest.load(manifest_path)
    assert not interrupted.all_terminal() or proc.returncode is not None

    # Phase 2: resume.  The same spec (identical injections — they are
    # fingerprinted) must reap surviving workers, skip verified results
    # and finish the rest.
    sink = MemorySink()
    supervisor = Supervisor(
        spec, workdir,
        SupervisorConfig(workers=3, max_retries=MAX_RETRIES,
                         retry_base_delay=0.05, job_timeout_s=JOB_TIMEOUT_S,
                         poll_interval_s=0.02),
        bus=EventBus([sink]))
    report = supervisor.run(resume=True)

    # Exact accounting: nothing lost, nothing double-counted.
    assert report.completed + report.quarantined == report.total == 12
    assert report.quarantined == len(EXPECT_QUARANTINED)
    quarantined = {jid for jid, row in report.jobs.items()
                   if row["status"] == "quarantined"}
    assert quarantined == EXPECT_QUARANTINED

    # Zero orphans: every pid the campaign ever recorded is dead.
    final = CampaignManifest.load(manifest_path)
    assert find_orphans(final) == []
    for state in final.jobs.values():
        assert state.pid is None or not pid_is_our_worker(state.pid)

    # Manifest matches the results on disk, digest-verified.
    for job_id, state in final.jobs.items():
        if state.status == "completed":
            assert final.verify_result(job_id), job_id
            assert Path(state.result_path) == (
                job_dir_for(workdir, job_id) / "result.json")
        else:
            assert state.quarantine_reason == "crash_loop"
            assert "timeout" in state.reasons  # reaped by the watchdog

    # Bit-for-bit: every never-fault-injected job reproduces the
    # uninterrupted serial run exactly, despite kills and retries.
    compared = 0
    for job_id, expected in baseline.items():
        if job_id in INJECTIONS:
            continue
        actual = (job_dir_for(workdir, job_id) / "result.json").read_bytes()
        assert actual == expected, f"result drift for {job_id}"
        compared += 1
    assert compared == 12 - len(INJECTIONS)

    # The resume emitted the typed lifecycle events.
    types = {e.type for e in sink.events}
    assert "job_done" in types
    assert "campaign" in types


def test_resume_of_finished_campaign_is_pure_skip(tmp_path, baseline):
    """A second resume must skip everything, bit-for-bit, launching
    nothing (skipped == completed count, attempts unchanged)."""
    spec = chaos_spec()
    # Use a fresh, *uninterrupted* supervised run to keep this test
    # independent of the kill test's ordering.
    spec = build_campaign(MODELS, ["criteo"], seeds=(0,), n_samples=SAMPLES,
                          epochs=EPOCHS, search_epochs=SEARCH_EPOCHS,
                          optinter_chain=True)
    workdir = tmp_path / "campaign"
    config = SupervisorConfig(workers=2, retry_base_delay=0.05,
                              poll_interval_s=0.02)
    first = Supervisor(spec, workdir, config).run()
    assert first.ok
    before = CampaignManifest.load(workdir / "manifest.json")
    bytes_before = {
        job_id: (job_dir_for(workdir, job_id) / "result.json").read_bytes()
        for job_id in spec.job_ids()}

    second = Supervisor(spec, workdir, config).run(resume=True)
    assert second.ok
    assert second.skipped_completed == second.total
    after = CampaignManifest.load(workdir / "manifest.json")
    for job_id in spec.job_ids():
        assert after.jobs[job_id].attempts == before.jobs[job_id].attempts
        assert (job_dir_for(workdir, job_id)
                / "result.json").read_bytes() == bytes_before[job_id]
        # The supervised results also match the in-process ground truth.
        assert bytes_before[job_id] == baseline[job_id]
