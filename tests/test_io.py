"""Checkpointing and serialisation round-trips."""

import numpy as np
import pytest

from repro.core import Architecture
from repro.io import (
    load_architecture,
    load_checkpoint,
    load_results,
    save_architecture,
    save_checkpoint,
    save_results,
)
from repro.models import FNN
from repro.nn import Tensor


class TestCheckpoint:
    def test_roundtrip_restores_outputs(self, tiny_dataset, tmp_path, rng):
        model = FNN(tiny_dataset.cardinalities, embed_dim=4,
                    hidden_dims=(8,), rng=rng)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)

        clone = FNN(tiny_dataset.cardinalities, embed_dim=4,
                    hidden_dims=(8,), rng=np.random.default_rng(99))
        load_checkpoint(clone, path)
        batch = tiny_dataset.full_batch()
        np.testing.assert_allclose(model(batch).numpy(),
                                   clone(batch).numpy())

    def test_creates_parent_directories(self, tiny_dataset, tmp_path, rng):
        model = FNN(tiny_dataset.cardinalities, embed_dim=4,
                    hidden_dims=(8,), rng=rng)
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_checkpoint(model, path)
        assert path.exists()

    def test_missing_file_raises(self, tiny_dataset, tmp_path, rng):
        model = FNN(tiny_dataset.cardinalities, embed_dim=4,
                    hidden_dims=(8,), rng=rng)
        with pytest.raises(FileNotFoundError):
            load_checkpoint(model, tmp_path / "absent.npz")

    def test_architecture_mismatch_raises(self, tiny_dataset, tmp_path, rng):
        model = FNN(tiny_dataset.cardinalities, embed_dim=4,
                    hidden_dims=(8,), rng=rng)
        save_checkpoint(model, tmp_path / "m.npz")
        other = FNN(tiny_dataset.cardinalities, embed_dim=5,
                    hidden_dims=(8,), rng=rng)
        with pytest.raises(ValueError):
            load_checkpoint(other, tmp_path / "m.npz")

    def test_suffix_added_consistently(self, tiny_dataset, tmp_path, rng):
        """Saving to `ckpt` and loading from `ckpt` must agree.

        np.savez silently appends ``.npz`` on save; the loader used to
        look for the literal suffix-less path and fail.
        """
        model = FNN(tiny_dataset.cardinalities, embed_dim=4,
                    hidden_dims=(8,), rng=rng)
        bare = tmp_path / "ckpt"
        save_checkpoint(model, bare)
        assert (tmp_path / "ckpt.npz").exists()
        clone = FNN(tiny_dataset.cardinalities, embed_dim=4,
                    hidden_dims=(8,), rng=np.random.default_rng(99))
        load_checkpoint(clone, bare)  # works with the same bare name
        load_checkpoint(clone, tmp_path / "ckpt.npz")  # and the real one
        batch = tiny_dataset.full_batch()
        np.testing.assert_allclose(model(batch).numpy(),
                                   clone(batch).numpy())

    def test_save_is_atomic(self, tiny_dataset, tmp_path, rng):
        model = FNN(tiny_dataset.cardinalities, embed_dim=4,
                    hidden_dims=(8,), rng=rng)
        save_checkpoint(model, tmp_path / "m.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["m.npz"]

    def test_parameterless_model_rejected(self, tmp_path):
        from repro.nn import Module

        class Empty(Module):
            def forward(self, x):
                return x

        with pytest.raises(ValueError):
            save_checkpoint(Empty(), tmp_path / "empty.npz")


class TestArchitectureFiles:
    def test_roundtrip(self, tmp_path, rng):
        arch = Architecture.random(25, rng)
        path = tmp_path / "arch.json"
        save_architecture(arch, path)
        assert load_architecture(path) == arch

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_architecture(tmp_path / "absent.json")

    def test_human_readable(self, tmp_path):
        arch = Architecture.all_memorize(2)
        path = tmp_path / "arch.json"
        save_architecture(arch, path)
        assert "memorize" in path.read_text()

    def test_save_is_atomic(self, tmp_path, rng):
        save_architecture(Architecture.random(5, rng), tmp_path / "a.json")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.json"]


class TestResults:
    def test_roundtrip_with_numpy_values(self, tmp_path):
        results = {
            "auc": np.float64(0.81),
            "params": np.int64(12345),
            "aucs": np.array([0.8, 0.81]),
            "nested": {"log_loss": 0.44},
        }
        path = tmp_path / "results.json"
        save_results(results, path)
        loaded = load_results(path)
        assert loaded["auc"] == pytest.approx(0.81)
        assert loaded["params"] == 12345
        assert loaded["aucs"] == [0.8, 0.81]
        assert loaded["nested"]["log_loss"] == pytest.approx(0.44)

    def test_architecture_embedded_in_results(self, tmp_path, rng):
        arch = Architecture.random(5, rng)
        path = tmp_path / "results.json"
        save_results({"architecture": arch}, path)
        loaded = load_results(path)
        assert Architecture.from_assignment(loaded["architecture"]) == arch

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path / "absent.json")

    def test_unencodable_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_results({"bad": Tensor(np.ones(2))}, tmp_path / "x.json")

    def test_failed_save_leaves_no_partial_file(self, tmp_path):
        target = tmp_path / "x.json"
        with pytest.raises(TypeError):
            save_results({"bad": Tensor(np.ones(2))}, target)
        assert list(tmp_path.iterdir()) == []

    def test_save_is_atomic(self, tmp_path):
        save_results({"auc": 0.8}, tmp_path / "r.json")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["r.json"]


class TestSearchRetrainWorkflow:
    def test_search_save_reload_retrain(self, tiny_splits, tmp_path):
        """The cross-process workflow: search, persist, reload, re-train."""
        from repro.core import RetrainConfig, SearchConfig, retrain, search_optinter
        from repro.training import evaluate_model

        train, val, test = tiny_splits
        search = search_optinter(train, val, SearchConfig(
            embed_dim=3, cross_embed_dim=2, hidden_dims=(8,), epochs=1,
            batch_size=256, seed=0))
        arch_path = tmp_path / "searched.json"
        save_architecture(search.architecture, arch_path)

        restored = load_architecture(arch_path)
        model, _ = retrain(restored, train, val, RetrainConfig(
            embed_dim=3, cross_embed_dim=2, hidden_dims=(8,), epochs=1,
            batch_size=256, seed=1))
        ckpt_path = tmp_path / "final.npz"
        save_checkpoint(model, ckpt_path)

        from repro.core import build_fixed_model

        clone = build_fixed_model(restored, train, RetrainConfig(
            embed_dim=3, cross_embed_dim=2, hidden_dims=(8,), seed=2))
        load_checkpoint(clone, ckpt_path)
        a = evaluate_model(model, test)
        b = evaluate_model(clone, test)
        assert a["auc"] == pytest.approx(b["auc"])


class TestCorruptCheckpoint:
    """Unreadable .npz files surface one typed error naming the path."""

    def _model(self, tiny_dataset, rng):
        return FNN(tiny_dataset.cardinalities, embed_dim=4,
                   hidden_dims=(8,), rng=rng)

    def test_truncated_archive_raises_typed_error(self, tiny_dataset,
                                                  tmp_path, rng):
        from repro.resilience.checkpoint import CorruptCheckpointError

        path = tmp_path / "truncated.npz"
        path.write_bytes(b"PK\x03\x04 not a complete zip archive")
        with pytest.raises(CorruptCheckpointError) as info:
            load_checkpoint(self._model(tiny_dataset, rng), path)
        assert str(path) in str(info.value)

    def test_garbage_bytes_raise_typed_error(self, tiny_dataset, tmp_path,
                                             rng):
        from repro.resilience.checkpoint import CorruptCheckpointError

        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(CorruptCheckpointError) as info:
            load_checkpoint(self._model(tiny_dataset, rng), path)
        assert str(path) in str(info.value)

    def test_truncated_valid_checkpoint_raises_typed_error(self, tiny_dataset,
                                                           tmp_path, rng):
        from repro.resilience.checkpoint import CorruptCheckpointError

        model = self._model(tiny_dataset, rng)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(CorruptCheckpointError):
            load_checkpoint(model, path)

    def test_missing_file_still_raises_file_not_found(self, tiny_dataset,
                                                      tmp_path, rng):
        # Absence is not corruption: callers distinguish the two.
        with pytest.raises(FileNotFoundError):
            load_checkpoint(self._model(tiny_dataset, rng),
                            tmp_path / "never_written.npz")
