"""Pinned-value regression tests.

These pin exact values produced by seeded runs in this environment.  They
exist to catch *unintentional* behaviour changes — a refactor that changes
RNG consumption order, a preprocessing tweak that silently shifts ids —
which shape-level tests would absorb.  If you change behaviour on purpose,
update the pins in the same commit and say why.
"""

import numpy as np
import pytest

from repro.core import SearchConfig, search_optinter
from repro.data import criteo_like, make_dataset


@pytest.fixture(scope="module")
def pinned_dataset():
    return make_dataset(criteo_like(n_samples=2000))


class TestDataPins:
    def test_label_count(self, pinned_dataset):
        dataset, _ = pinned_dataset
        assert int(dataset.y.sum()) == 456

    def test_id_matrix_checksum(self, pinned_dataset):
        dataset, _ = pinned_dataset
        assert int(dataset.x.sum()) == 200129

    def test_cross_checksum(self, pinned_dataset):
        dataset, _ = pinned_dataset
        assert int(dataset.x_cross.sum()) % 1000003 == 457100

    def test_cardinalities_prefix(self, pinned_dataset):
        dataset, _ = pinned_dataset
        assert dataset.cardinalities[:4] == [11, 11, 11, 41]


class TestSearchPins:
    def test_searched_architecture(self, pinned_dataset):
        dataset, _ = pinned_dataset
        train, val, _ = dataset.split((0.7, 0.1, 0.2),
                                      rng=np.random.default_rng(0))
        result = search_optinter(train, val, SearchConfig(
            embed_dim=3, cross_embed_dim=2, hidden_dims=(8,), epochs=1,
            batch_size=256, seed=0))
        assert result.architecture.counts() == [38, 10, 18]
        np.testing.assert_allclose(np.abs(result.alpha).sum(), 7.549658,
                                   atol=1e-5)
