"""Drift monitoring: PSI/KL, windowed evaluation, alerts and folding."""

import numpy as np
import pytest

from repro.obs import (
    DriftMonitor,
    EventBus,
    MemorySink,
    MetricsRegistry,
    kl_divergence,
    psi,
)


def iid_matrix(rng, n, cardinalities, concentration=1.0):
    """Rows drawn from one fixed categorical distribution per field."""
    columns = []
    for card in cardinalities:
        weights = rng.dirichlet(np.full(card, concentration))
        columns.append(rng.choice(card, size=n, p=weights))
    return np.stack(columns, axis=1), None


class TestDivergences:
    def test_identical_distributions_near_zero(self):
        counts = np.array([50.0, 30.0, 20.0])
        # Equal shapes at different totals: only the smoothing term
        # separates them.
        assert psi(counts, counts * 2) == pytest.approx(0.0, abs=1e-4)
        assert kl_divergence(counts, counts) == pytest.approx(0.0, abs=1e-9)

    def test_shifted_mass_is_positive_and_symmetric_in_sign(self):
        ref = np.array([80.0, 10.0, 10.0])
        win = np.array([10.0, 10.0, 80.0])
        assert psi(ref, win) > 0.25
        assert kl_divergence(ref, win) > 0.0

    def test_smoothing_keeps_empty_categories_finite(self):
        assert np.isfinite(psi(np.array([10.0, 0.0]), np.array([0.0, 10.0])))

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            psi(np.zeros(0), np.zeros(0))


class TestFitAndValidation:
    def test_observe_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit_reference"):
            DriftMonitor().observe(np.array([0, 1]))

    def test_row_width_mismatch_raises(self):
        monitor = DriftMonitor(window=4).fit_reference(
            np.zeros((10, 3), dtype=np.int64))
        with pytest.raises(ValueError, match="fields"):
            monitor.observe(np.array([0, 1]))

    def test_field_name_count_must_match(self):
        with pytest.raises(ValueError, match="field names"):
            DriftMonitor(field_names=["a"]).fit_reference(
                np.zeros((5, 2), dtype=np.int64))

    def test_scores_must_parallel_rows(self):
        with pytest.raises(ValueError, match="scores"):
            DriftMonitor().fit_reference(np.zeros((5, 2), dtype=np.int64),
                                         scores=np.zeros(3))

    def test_bad_constructor_args(self):
        with pytest.raises(ValueError):
            DriftMonitor(window=1)
        with pytest.raises(ValueError):
            DriftMonitor(max_categories=1)
        with pytest.raises(ValueError):
            DriftMonitor(smoothing=0.0)


class TestWindowing:
    def test_report_only_when_window_fills(self):
        rng = np.random.default_rng(0)
        x, _ = iid_matrix(rng, 400, [5, 7])
        monitor = DriftMonitor(window=100).fit_reference(x)
        reports = [monitor.observe(row) for row in x]
        produced = [r for r in reports if r is not None]
        assert len(produced) == 4
        assert all(r.window_n == 100 for r in produced)

    def test_iid_replay_stays_quiet(self):
        rng = np.random.default_rng(1)
        cards = [6, 9, 4]
        x, _ = iid_matrix(rng, 1200, cards)
        monitor = DriftMonitor(window=300).fit_reference(
            x[:600], cardinalities=cards)
        reports = [monitor.observe(row) for row in x[600:]]
        produced = [r for r in reports if r is not None]
        assert produced and all(not r.drifted for r in produced)

    def test_covariate_shift_flagged(self):
        rng = np.random.default_rng(2)
        cards = [6, 9, 4]
        x, _ = iid_matrix(rng, 600, cards)
        monitor = DriftMonitor(window=300).fit_reference(
            x, cardinalities=cards)
        shifted = x[:300].copy()
        shifted[:, 0] = (shifted[:, 0] + 3) % cards[0]  # permute field 0
        report = [monitor.observe(row) for row in shifted][-1]
        assert report is not None
        assert any(a["kind"] == "covariate_drift" and a["field"] == "field_0"
                   for a in report.alerts)
        assert report.worst_field() == "field_0"

    def test_evaluate_scores_partial_window_without_clearing(self):
        rng = np.random.default_rng(3)
        x, _ = iid_matrix(rng, 100, [5])
        monitor = DriftMonitor(window=1000).fit_reference(x)
        assert monitor.evaluate() is None  # nothing observed yet
        for row in x[:10]:
            monitor.observe(row)
        report = monitor.evaluate()
        assert report is not None and report.window_n == 10
        # evaluate() did not clear: the next one sees more rows.
        monitor.observe(x[10])
        assert monitor.evaluate().window_n == 11


class TestScoreAndCalibrationDrift:
    def _fitted(self, ref_scores, window=200, **kwargs):
        x = np.zeros((len(ref_scores), 1), dtype=np.int64)
        return DriftMonitor(window=window, **kwargs).fit_reference(
            x, scores=np.asarray(ref_scores))

    def test_score_distribution_shift_flagged(self):
        rng = np.random.default_rng(4)
        monitor = self._fitted(rng.uniform(0.0, 0.4, size=1000))
        report = None
        for _ in range(200):
            report = monitor.observe(np.array([0]),
                                     score=rng.uniform(0.6, 1.0))
        assert report.score_psi > 0.25
        assert any(a["kind"] == "score_drift" for a in report.alerts)

    def test_calibration_drift_flagged_without_distribution_shift(self):
        # Same histogram bin, shifted mean: only the calibration alert.
        monitor = self._fitted(np.full(500, 0.41), window=100,
                               calibration_threshold=0.05)
        report = None
        for _ in range(100):
            report = monitor.observe(np.array([0]), score=0.49)
        kinds = {a["kind"] for a in report.alerts}
        assert "calibration_drift" in kinds
        assert "score_drift" not in kinds

    def test_no_scores_means_covariate_only(self):
        monitor = DriftMonitor(window=10).fit_reference(
            np.zeros((50, 1), dtype=np.int64))
        report = None
        for _ in range(10):
            report = monitor.observe(np.array([0]), score=0.9)
        assert report.score_psi is None
        assert report.calibration_delta is None


class TestCategoryFolding:
    def test_wide_fields_fold_to_max_categories(self):
        rng = np.random.default_rng(5)
        x = rng.integers(0, 5000, size=(400, 1))
        monitor = DriftMonitor(window=100, max_categories=20).fit_reference(
            x, cardinalities=[5000])
        assert monitor._ref_field_counts[0].size == 20
        assert monitor._ref_field_counts[0].sum() == pytest.approx(400)

    def test_folding_suppresses_small_sample_noise(self):
        # 200-row windows over a 2000-id vocabulary: unbinned PSI would
        # be dominated by sampling noise; folded PSI stays small.
        rng = np.random.default_rng(6)
        ids = rng.zipf(1.3, size=4000) % 2000
        x = ids.reshape(-1, 1)
        monitor = DriftMonitor(window=200).fit_reference(
            x[:2000], cardinalities=[2000])
        reports = [monitor.observe(row) for row in x[2000:]]
        produced = [r for r in reports if r is not None]
        assert produced and all(not r.drifted for r in produced)

    def test_novel_ids_counted_as_drift_signal(self):
        x = np.repeat(np.arange(4), 50).reshape(-1, 1)
        monitor = DriftMonitor(window=100).fit_reference(
            x, cardinalities=[4])
        report = None
        for _ in range(100):
            report = monitor.observe(np.array([99]))  # beyond cardinality
        assert report.drifted
        assert report.field_psi["field_0"] > 0.25


class TestPublishing:
    def test_gauges_counters_and_alert_events(self):
        registry = MetricsRegistry()
        sink = MemorySink()
        rng = np.random.default_rng(7)
        x, _ = iid_matrix(rng, 200, [5])
        monitor = DriftMonitor(window=50, metrics=registry,
                               bus=EventBus([sink]),
                               field_names=["country"]).fit_reference(x)
        for _ in range(50):
            monitor.observe(np.array([4]))  # constant: certain drift
        snapshot = registry.snapshot()
        assert snapshot["drift.windows"]["value"] == 1
        assert snapshot["drift.alerts"]["value"] >= 1
        assert snapshot["drift.psi.country"]["value"] > 0.25
        alerts = sink.of_type("alert")
        assert alerts and alerts[0].payload["kind"] == "covariate_drift"
        assert alerts[0].payload["field"] == "country"
