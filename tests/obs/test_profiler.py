"""Autodiff profiler: op attribution, hook hygiene, numerical neutrality."""

import numpy as np
import pytest

import repro.nn.tensor as tensor_module
from repro.models import FNN
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.obs import EventBus, MemorySink, Profiler
from repro.training import Trainer


def _snapshot_hooks():
    """The attributes the profiler patches, for before/after comparison."""
    from repro.obs.profiler import _TENSOR_METHODS

    return {name: getattr(Tensor, name) for name in _TENSOR_METHODS}


class TestOpAttribution:
    def test_forward_ops_recorded(self):
        a = Tensor(np.ones((16, 8)), requires_grad=True)
        b = Tensor(np.ones((8, 4)), requires_grad=True)
        with Profiler() as prof:
            (a @ b).relu().sum()
        assert prof.op_stats["matmul"].calls == 1
        assert prof.op_stats["relu"].calls == 1
        assert prof.op_stats["sum"].calls == 1
        assert prof.op_stats["matmul"].self_s >= 0

    def test_backward_time_attributed(self):
        a = Tensor(np.ones((16, 8)), requires_grad=True)
        b = Tensor(np.ones((8, 4)), requires_grad=True)
        with Profiler() as prof:
            (a @ b).sigmoid().sum().backward()
        assert prof.op_stats["matmul"].backward_calls == 1
        assert prof.op_stats["sigmoid"].backward_calls == 1
        assert prof.op_stats["matmul"].backward_s >= 0

    def test_bytes_touched_counts_output(self):
        a = Tensor(np.ones((10, 10)))
        with Profiler() as prof:
            a + a
        # 100 float64s = 800 bytes.
        assert prof.op_stats["add"].out_bytes == 800

    def test_composite_op_self_time_excludes_children(self):
        a = Tensor(np.ones((64, 64)), requires_grad=True)
        with Profiler() as prof:
            a.mean()
        # mean = sum + mul; the constituents were recorded.
        assert prof.op_stats["sum"].calls == 1
        assert prof.op_stats["mul"].calls == 1
        mean_stat = prof.op_stats["mean"]
        assert mean_stat.self_s <= mean_stat.total_s

    def test_composite_backward_not_double_counted(self):
        a = Tensor(np.ones((8, 8)), requires_grad=True)
        with Profiler() as prof:
            a.mean().backward()
        # mean's output IS mul's output: one backward closure, wrapped
        # once, attributed to the inner op.
        total_bwd = sum(s.backward_calls for s in prof.op_stats.values())
        assert total_bwd == 2  # mul backward + sum backward

    def test_free_functions_recorded(self):
        a = Tensor(np.ones((4, 2)), requires_grad=True)
        b = Tensor(np.ones((4, 2)), requires_grad=True)
        table = Tensor(np.ones((10, 3)), requires_grad=True)
        with Profiler() as prof:
            tensor_module.concatenate([a, b], axis=1)
            tensor_module.stack([a, b])
            tensor_module.embedding_lookup(table, np.array([1, 2]))
            tensor_module.where(np.array([True, False]),
                                Tensor(np.ones(2)), Tensor(np.zeros(2)))
        for name in ("concatenate", "stack", "embedding_lookup", "where"):
            assert prof.op_stats[name].calls == 1, name

    def test_free_functions_recorded_through_import_sites(self):
        """Modules that did ``from .tensor import embedding_lookup`` are
        patched too — layers.py calls the bound name, not the module attr."""
        from repro.nn.layers import Embedding

        embed = Embedding(12, 4, rng=np.random.default_rng(0))
        with Profiler() as prof:
            embed(np.array([0, 3, 5]))
        assert prof.op_stats["embedding_lookup"].calls == 1

    def test_module_forward_times_recorded(self):
        class Doubler(Module):
            def forward(self, x):
                return x * 2.0

        model = Doubler()
        with Profiler() as prof:
            model(Tensor(np.ones(4)))
            model(Tensor(np.ones(4)))
        stat = prof.module_stats["Doubler"]
        assert stat.calls == 2
        assert stat.total_s >= stat.self_s >= 0


class TestSparseGradAccounting:
    """Profiling an embedding whose backward emits a SparseGrad: the
    byte counters must cover the dense forward output and nothing must
    break when the gradient flowing into the table is not an ndarray."""

    def _profiled_lookup(self):
        table = Tensor(np.ones((1000, 8)), requires_grad=True)
        with Profiler() as prof:
            out = tensor_module.embedding_lookup(table, np.array([1, 2, 2]))
            out.sum().backward()
        return table, prof

    def test_backward_produces_sparse_grad_under_profiler(self):
        from repro.nn.sparse import SparseGrad

        table, _prof = self._profiled_lookup()
        assert isinstance(table.grad, SparseGrad)
        assert table.grad.num_rows == 2  # rows 1 and 2, coalesced

    def test_out_bytes_counts_dense_output_not_vocab(self):
        _table, prof = self._profiled_lookup()
        stat = prof.op_stats["embedding_lookup"]
        # 3 gathered rows * 8 dims * 8 bytes — the batch-sized output,
        # never the [1000, 8] table the sparse path avoids densifying.
        assert stat.out_bytes == 3 * 8 * 8
        assert stat.backward_calls == 1
        assert stat.backward_s >= 0

    def test_sparse_and_dense_grads_agree_when_profiled(self):
        dense_table = Tensor(np.ones((50, 4)), requires_grad=True)
        sparse_table = Tensor(np.ones((50, 4)), requires_grad=True)
        indices = np.array([0, 3, 3, 7])
        with Profiler():
            tensor_module.embedding_lookup(
                dense_table, indices, dense_grad=True).sum().backward()
            tensor_module.embedding_lookup(
                sparse_table, indices).sum().backward()
        np.testing.assert_array_equal(sparse_table.grad.to_dense(),
                                      dense_table.grad)


class TestHookHygiene:
    def test_hooks_restored_on_exit(self):
        before = _snapshot_hooks()
        with Profiler():
            assert getattr(Tensor.__add__, "_obs_original", None) is not None
        after = _snapshot_hooks()
        assert before == after
        assert tensor_module.concatenate.__name__ == "concatenate"

    def test_hooks_restored_on_exception(self):
        before = _snapshot_hooks()
        with pytest.raises(RuntimeError, match="boom"):
            with Profiler():
                raise RuntimeError("boom")
        assert _snapshot_hooks() == before

    def test_disabled_path_is_untouched(self):
        """No profiler active -> the exact original functions are installed,
        i.e. zero added overhead outside the context manager."""
        assert not hasattr(Tensor.__mul__, "_obs_original")
        assert not hasattr(Module.__call__, "_obs_original")
        assert not hasattr(tensor_module.embedding_lookup, "_obs_original")

    def test_concurrent_profilers_rejected(self):
        with Profiler():
            with pytest.raises(RuntimeError, match="already active"):
                with Profiler():
                    pass

    def test_reports_after_exit(self):
        with Profiler() as prof:
            Tensor(np.ones(4)) + 1.0
        table = prof.table()
        assert "add" in table
        assert "wall clock" in table
        assert prof.wall_s > 0
        assert prof.as_dict()["ops"]["add"]["calls"] == 1


class TestEventIntegration:
    def test_op_timing_event_published_on_exit(self):
        sink = MemorySink()
        with Profiler(bus=EventBus([sink])):
            Tensor(np.ones(4)).relu()
        events = sink.of_type("op_timing")
        assert len(events) == 1
        assert events[0].payload["ops"]["relu"]["calls"] == 1
        assert events[0].payload["wall_s"] > 0


def _train_small(tiny_splits, profiled: bool):
    train, val, _ = tiny_splits
    model = FNN(train.cardinalities, embed_dim=4, hidden_dims=(8,),
                rng=np.random.default_rng(0))
    trainer = Trainer(model, Adam(model.parameters(), lr=1e-2),
                      batch_size=128, max_epochs=2,
                      rng=np.random.default_rng(1))
    if profiled:
        with Profiler() as prof:
            history = trainer.fit(train, val)
        assert prof.op_stats  # it really was profiling
    else:
        history = trainer.fit(train, val)
    return model.state_dict(), history


class TestNumericalNeutrality:
    def test_profiled_run_identical_to_unprofiled(self, tiny_splits):
        """The tentpole guarantee: instrumentation must not perturb RNG
        or numerics — profiled and unprofiled runs agree bit-for-bit."""
        state_plain, history_plain = _train_small(tiny_splits, profiled=False)
        state_prof, history_prof = _train_small(tiny_splits, profiled=True)
        assert history_plain.train_losses() == history_prof.train_losses()
        assert history_plain.val_aucs() == history_prof.val_aucs()
        assert set(state_plain) == set(state_prof)
        for name in state_plain:
            np.testing.assert_array_equal(state_plain[name], state_prof[name],
                                          err_msg=name)
