"""Metrics registry: counters, gauges, streaming histograms, timers."""

import time

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.metrics import default_buckets


class TestCounter:
    def test_increments(self):
        c = Counter("steps")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("steps").inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("temperature")
        g.set(1.0)
        g.set(0.3)
        assert g.value == 0.3

    def test_unset_is_none(self):
        assert Gauge("lr").value is None


class TestHistogram:
    def test_exact_summary_stats(self):
        h = Histogram("loss", buckets=[0.5, 1.0, 2.0])
        for v in (0.1, 0.4, 0.9, 1.5):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(2.9)
        assert h.min == 0.1
        assert h.max == 1.5
        assert h.mean == pytest.approx(0.725)

    def test_bucket_assignment_and_overflow(self):
        h = Histogram("t", buckets=[1.0, 10.0])
        for v in (0.5, 0.9, 5.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]

    def test_quantiles_bracket_the_data(self):
        h = Histogram("t", buckets=default_buckets(start=0.01, factor=2,
                                                   count=20))
        for v in range(1, 101):
            h.observe(v / 10.0)
        p50 = h.quantile(0.5)
        assert 3.0 <= p50 <= 8.0
        # Edge quantiles answer bucket upper bounds: the first occupied
        # bucket's for q=0, the last occupied bucket's for q=1 — the same
        # values histogram_quantile would compute from a scrape.
        first_occupied = min(i for i, c in enumerate(h.counts) if c)
        last_occupied = max(i for i, c in enumerate(h.counts) if c)
        assert h.quantile(0.0) == h.bounds[first_occupied]
        assert h.quantile(1.0) == h.bounds[last_occupied]

    def test_empty_quantile_is_none(self):
        assert Histogram("t").quantile(0.5) is None

    def test_single_observation_answers_its_bucket_upper_bound(self):
        h = Histogram("t", buckets=[1.0, 10.0])
        h.observe(0.5)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 1.0

    def test_overflow_bucket_quantile_uses_observed_max(self):
        h = Histogram("t", buckets=[1.0])
        h.observe(50.0)
        h.observe(70.0)
        assert h.quantile(1.0) == 70.0

    def test_quantile_bounds_validated(self):
        with pytest.raises(ValueError):
            Histogram("t").quantile(1.5)

    def test_as_dict_is_json_shaped(self):
        h = Histogram("t")
        h.observe(0.5)
        summary = h.as_dict()
        assert summary["count"] == 1
        assert set(summary) == {"type", "count", "sum", "min", "max", "mean",
                                "p50", "p99", "bounds", "bucket_counts"}
        assert summary["type"] == "histogram"
        assert summary["sum"] == pytest.approx(0.5)
        assert len(summary["bucket_counts"]) == len(summary["bounds"]) + 1
        assert sum(summary["bucket_counts"]) == 1

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=[])
        with pytest.raises(ValueError):
            default_buckets(start=0)


class TestTimer:
    def test_records_elapsed_into_histogram(self):
        registry = MetricsRegistry()
        with registry.timer("sleep") as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        hist = registry.histogram("sleep")
        assert hist.count == 1
        assert hist.total >= 0.01

    def test_repeated_timers_share_histogram(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.timer("op"):
                pass
        assert registry.histogram("op").count == 3


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_covers_all_metrics(self):
        registry = MetricsRegistry()
        registry.counter("steps").inc(2)
        registry.gauge("lr").set(0.001)
        registry.histogram("loss").observe(0.5)
        snap = registry.snapshot()
        assert snap["steps"]["value"] == 2
        assert snap["lr"]["value"] == 0.001
        assert snap["loss"]["count"] == 1

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.gauge("temp")
        assert "temp" in registry
        assert registry.names() == ["temp"]

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.reset()
        assert registry.names() == []


class TestThreadSafety:
    """Serving worker threads update metrics concurrently; no update may
    be lost to an interleaved read-modify-write and nothing may raise."""

    N_THREADS = 8
    PER_THREAD = 2000

    def _run_in_threads(self, target):
        import threading

        errors = []

        def wrapped():
            try:
                target()
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=wrapped)
                   for _ in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_counter_loses_no_increments(self):
        counter = Counter("hits")
        self._run_in_threads(
            lambda: [counter.inc() for _ in range(self.PER_THREAD)])
        assert counter.value == self.N_THREADS * self.PER_THREAD

    def test_histogram_loses_no_observations(self):
        histogram = Histogram("latency", buckets=[0.5, 1.0])
        self._run_in_threads(
            lambda: [histogram.observe(0.25) for _ in range(self.PER_THREAD)])
        total = self.N_THREADS * self.PER_THREAD
        assert histogram.count == total
        assert histogram.counts[0] == total
        assert histogram.total == pytest.approx(0.25 * total)

    def test_registry_creates_one_metric_per_name(self):
        registry = MetricsRegistry()
        seen = []
        self._run_in_threads(
            lambda: seen.append(registry.counter("shared")))
        assert len(set(map(id, seen))) == 1

    def test_concurrent_snapshot_during_updates(self):
        registry = MetricsRegistry()

        def mixed():
            for i in range(500):
                registry.counter("c").inc()
                registry.histogram("h").observe(float(i))
                registry.snapshot()

        self._run_in_threads(mixed)
        assert registry.counter("c").value == self.N_THREADS * 500
