"""Event bus: typed events, sinks, JSONL round-trips."""

import io
import json

import numpy as np
import pytest

from repro.obs import (
    ConsoleSink,
    Event,
    EventBus,
    JsonlSink,
    MemorySink,
    read_trace,
    register_event_type,
)


class TestEvent:
    def test_json_round_trip(self):
        event = Event(type="eval", payload={"auc": 0.75, "split": "val"})
        restored = Event.from_json(event.to_json())
        assert restored.type == "eval"
        assert restored.payload == {"auc": 0.75, "split": "val"}
        assert restored.time == event.time

    def test_numpy_payload_serialises(self):
        event = Event(type="search_alpha",
                      payload={"alpha": np.arange(6, dtype=np.float64).reshape(2, 3),
                               "epoch": np.int64(3),
                               "loss": np.float64(0.5)})
        raw = json.loads(event.to_json())
        assert raw["payload"]["alpha"] == [[0, 1, 2], [3, 4, 5]]
        assert raw["payload"]["epoch"] == 3
        assert raw["payload"]["loss"] == 0.5

    def test_nested_numpy_in_dicts_and_lists(self):
        event = Event(type="op_timing",
                      payload={"ops": {"add": {"bytes": np.int64(8)}},
                               "series": [np.float64(1.0)]})
        raw = json.loads(event.to_json())
        assert raw["payload"]["ops"]["add"]["bytes"] == 8
        assert raw["payload"]["series"] == [1.0]


class TestEventBus:
    def test_emit_fans_out_to_all_sinks(self):
        a, b = MemorySink(), MemorySink()
        bus = EventBus([a, b])
        bus.emit("epoch_end", epoch=0, train_loss=0.7)
        assert len(a) == len(b) == 1
        assert a.events[0].payload["epoch"] == 0

    def test_unknown_type_rejected(self):
        bus = EventBus([MemorySink()])
        with pytest.raises(ValueError, match="unknown event type"):
            bus.emit("no_such_event")

    def test_registered_custom_type_accepted(self):
        name = register_event_type("custom_for_test")
        sink = MemorySink()
        EventBus([sink]).emit(name, value=1)
        assert sink.events[0].type == name

    def test_invalid_registration_rejected(self):
        with pytest.raises(ValueError):
            register_event_type("")

    def test_bus_with_no_sinks_is_noop(self):
        event = EventBus().emit("step", loss=0.1)
        assert event.payload == {"loss": 0.1}

    def test_publish_prebuilt_event(self):
        sink = MemorySink()
        EventBus([sink]).publish(Event(type="eval", payload={"auc": 0.5}))
        assert sink.of_type("eval")[0].payload["auc"] == 0.5

    def test_context_manager_closes_sinks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with EventBus.to_jsonl(path) as bus:
            bus.emit("run_start", model="FNN")
        with pytest.raises(RuntimeError, match="closed"):
            bus.sinks[0].emit(Event(type="run_end"))

    def test_injected_clock_stamps_events(self):
        ticks = iter([10.0, 20.0, 30.0])
        sink = MemorySink()
        bus = EventBus([sink], clock=lambda: next(ticks))
        bus.emit("run_start")
        bus.emit("run_end")
        assert [e.time for e in sink.events] == [10.0, 20.0]
        assert bus.clock() == 30.0

    def test_to_jsonl_accepts_clock(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with EventBus.to_jsonl(path, clock=lambda: 42.0) as bus:
            bus.emit("run_start")
        assert json.loads(path.read_text().splitlines()[0])["time"] == 42.0

    def test_publish_keeps_prebuilt_timestamp(self):
        sink = MemorySink()
        bus = EventBus([sink], clock=lambda: 99.0)
        bus.publish(Event(type="eval", payload={}, time=7.0))
        assert sink.events[0].time == 7.0


class TestMemorySink:
    def test_of_type_filters(self):
        sink = MemorySink()
        bus = EventBus([sink])
        bus.emit("step", loss=0.1)
        bus.emit("epoch_end", epoch=0, train_loss=0.2)
        bus.emit("step", loss=0.05)
        assert [e.payload["loss"] for e in sink.of_type("step")] == [0.1, 0.05]


class TestJsonlSink:
    def test_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "t.jsonl"
        bus = EventBus.to_jsonl(path)
        bus.emit("epoch_end", epoch=0, train_loss=0.9)
        bus.emit("epoch_end", epoch=1, train_loss=0.8)
        bus.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["payload"]["epoch"] == 1

    def test_appends_across_reopens(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for epoch in range(2):
            with EventBus.to_jsonl(path) as bus:
                bus.emit("epoch_end", epoch=epoch, train_loss=0.5)
        assert len(path.read_text().splitlines()) == 2

    def test_flushes_while_open(self, tmp_path):
        path = tmp_path / "t.jsonl"
        bus = EventBus.to_jsonl(path)
        bus.emit("step", loss=0.3)
        # Readable before close — important for tailing live runs.
        assert json.loads(path.read_text().splitlines()[0])["type"] == "step"
        bus.close()

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with EventBus.to_jsonl(path) as bus:
            bus.emit("run_start")
        assert path.exists()


class TestConsoleSink:
    def test_renders_payload(self):
        stream = io.StringIO()
        sink = ConsoleSink(stream=stream)
        sink.emit(Event(type="epoch_end",
                        payload={"epoch": 1, "train_loss": 0.53125}))
        out = stream.getvalue()
        assert "[epoch_end]" in out
        assert "epoch=1" in out
        assert "train_loss=0.53125" in out

    def test_step_events_suppressed_by_default(self):
        stream = io.StringIO()
        ConsoleSink(stream=stream).emit(Event(type="step", payload={"loss": 1.0}))
        assert stream.getvalue() == ""

    def test_step_events_opt_in(self):
        stream = io.StringIO()
        ConsoleSink(stream=stream, include_steps=True).emit(
            Event(type="step", payload={"loss": 1.0}))
        assert "[step]" in stream.getvalue()

    def test_long_arrays_abbreviated(self):
        stream = io.StringIO()
        ConsoleSink(stream=stream).emit(
            Event(type="search_alpha", payload={"alpha": [[0.1] * 3] * 10}))
        assert "<10 values>" in stream.getvalue()


class TestReadTrace:
    def test_round_trip_with_filter(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with EventBus.to_jsonl(path) as bus:
            bus.emit("epoch_end", epoch=0, train_loss=0.4)
            bus.emit("search_alpha", epoch=0, methods=["naive"])
            bus.emit("epoch_end", epoch=1, train_loss=0.3)
        assert len(read_trace(path)) == 3
        alphas = read_trace(path, "search_alpha")
        assert len(alphas) == 1
        assert alphas[0].payload["methods"] == ["naive"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_trace(tmp_path / "absent.jsonl")

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "eval", "payload": {"auc": 0.5}}\n\n\n')
        assert len(read_trace(path)) == 1
