"""Span tracing: nesting, ids, cross-thread hand-off, trace analysis."""

import threading

import pytest

from repro.obs import (
    EventBus,
    MemorySink,
    Span,
    Tracer,
    render_span_tree,
    sequential_ids,
    span_tree,
    spans_from_trace,
    summarize_spans,
)
from repro.obs.tracing import spans_from_events, trace_ids


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, start=100.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_tracer(sink=None):
    sink = sink if sink is not None else MemorySink()
    bus = EventBus([sink])
    tracer = Tracer(bus=bus, clock=FakeClock(), ids=sequential_ids())
    return tracer, sink


class TestSpan:
    def test_payload_round_trip(self):
        span = Span(name="train.epoch", trace_id="t", span_id="s",
                    parent_id="p", start=1.0, duration_s=0.5,
                    attrs={"epoch": 3})
        restored = Span.from_payload(span.as_payload())
        assert restored == span

    def test_mark_error_formats_exceptions(self):
        span = Span(name="x", trace_id="t", span_id="s")
        span.mark_error(ValueError("boom"))
        assert span.status == "error"
        assert span.error == "ValueError: boom"


class TestTracerNesting:
    def test_child_inherits_trace_and_parent(self):
        tracer, sink = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = spans_from_events(sink.events)
        # Children emit before parents (exit order).
        assert [s.name for s in spans] == ["inner", "outer"]

    def test_siblings_share_parent_not_ids(self):
        tracer, sink = make_tracer()
        with tracer.span("run"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, _run = spans_from_events(sink.events)
        assert a.parent_id == b.parent_id
        assert a.span_id != b.span_id

    def test_exception_marks_error_and_propagates(self):
        tracer, sink = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("exploded")
        (span,) = spans_from_events(sink.events)
        assert span.status == "error"
        assert "exploded" in span.error
        # The stack unwound: the next span is a fresh root.
        with tracer.span("next") as nxt:
            assert nxt.parent_id is None

    def test_durations_come_from_injected_clock(self):
        tracer, sink = make_tracer()
        with tracer.span("timed"):
            pass
        (span,) = spans_from_events(sink.events)
        # FakeClock advances 1 s per read: start and end are adjacent reads.
        assert span.duration_s == pytest.approx(1.0)

    def test_explicit_parent_overrides_thread_local(self):
        tracer, sink = make_tracer()
        with tracer.span("root") as root:
            pass
        with tracer.span("adopted", parent=root) as child:
            assert child.trace_id == root.trace_id
            assert child.parent_id == root.span_id


class TestDisabledTracer:
    def test_no_output_means_noop_span(self):
        tracer = Tracer()
        assert not tracer.enabled
        with tracer.span("anything") as span:
            span.set_attr("k", "v")
            span.mark_error("ignored")
        assert tracer.current() is None

    def test_record_returns_none_when_disabled(self):
        assert Tracer().record("queue", start=0.0, duration_s=1.0) is None


class TestRecord:
    def test_retroactive_span_joins_parent_trace(self):
        tracer, sink = make_tracer()
        with tracer.span("request") as request:
            queued = tracer.record("queue", start=90.0, duration_s=5.0,
                                   parent=request)
        assert queued.trace_id == request.trace_id
        queue_span = spans_from_events(sink.events)[0]
        assert queue_span.start == 90.0
        assert queue_span.duration_s == 5.0

    def test_cross_thread_handoff_shares_one_trace(self):
        tracer, sink = make_tracer()
        done = threading.Event()

        def worker(parent):
            with tracer.span("work", parent=parent):
                pass
            done.set()

        with tracer.span("request") as request:
            thread = threading.Thread(target=worker, args=(request,))
            thread.start()
            assert done.wait(timeout=5.0)
            thread.join(timeout=5.0)
        spans = spans_from_events(sink.events)
        assert len({s.trace_id for s in spans}) == 1


class TestEmitHook:
    def test_emit_callable_instead_of_bus(self):
        captured = []
        tracer = Tracer(emit=lambda etype, **p: captured.append((etype, p)),
                        ids=sequential_ids())
        with tracer.span("via_emit"):
            pass
        assert captured[0][0] == "span"
        assert captured[0][1]["name"] == "via_emit"


class TestAnalysis:
    def _trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus.to_jsonl(path)
        tracer = Tracer(bus=bus, clock=FakeClock(), ids=sequential_ids())
        with tracer.span("serve.request"):
            with tracer.span("serve.validate"):
                pass
            with tracer.span("serve.score"):
                pass
        bus.emit("epoch_end", epoch=0)  # non-span noise must be ignored
        bus.close()
        return path

    def test_spans_from_trace_filters_span_events(self, tmp_path):
        spans = spans_from_trace(self._trace(tmp_path))
        assert {s.name for s in spans} == {"serve.request", "serve.validate",
                                           "serve.score"}

    def test_summarize_counts_and_percentiles(self, tmp_path):
        summary = summarize_spans(spans_from_trace(self._trace(tmp_path)))
        assert summary["serve.request"]["count"] == 1
        assert summary["serve.request"]["errors"] == 0
        assert summary["serve.validate"]["p50_s"] == pytest.approx(1.0)

    def test_tree_nests_children_in_start_order(self, tmp_path):
        spans = spans_from_trace(self._trace(tmp_path))
        (root,) = span_tree(spans)
        assert root["span"].name == "serve.request"
        assert [n["span"].name for n in root["children"]] == [
            "serve.validate", "serve.score"]

    def test_render_is_indented_ascii(self, tmp_path):
        text = render_span_tree(spans_from_trace(self._trace(tmp_path)))
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert lines[1].lstrip().startswith("serve.request")
        assert lines[2].startswith("    serve.validate")

    def test_tree_defaults_to_last_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        bus = EventBus.to_jsonl(path)
        tracer = Tracer(bus=bus, ids=sequential_ids())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        bus.close()
        spans = spans_from_trace(path)
        assert len(trace_ids(spans)) == 2
        (root,) = span_tree(spans)
        assert root["span"].name == "second"
