"""Prometheus exposition: rendering conventions and the scrape parser."""

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
    sanitize_metric_name,
)


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("serve.latency_s") == "serve_latency_s"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("5xx.count") == "_5xx_count"

    def test_valid_names_untouched(self):
        assert sanitize_metric_name("ok_name:sub") == "ok_name:sub"


class TestRender:
    def test_counter_gets_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(42)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 42" in text

    def test_gauge_renders_value(self):
        registry = MetricsRegistry()
        registry.gauge("drift.psi.field_0").set(0.125)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_drift_psi_field_0 gauge" in text
        assert "repro_drift_psi_field_0 0.125" in text

    def test_unset_gauge_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        assert "never_set" not in render_prometheus(registry.snapshot())

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0))
        for value in (0.5, 0.6, 1.5, 9.0):
            histogram.observe(value)
        text = render_prometheus(registry.snapshot())
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="2"} 3' in text
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert "repro_lat_sum 11.6" in text
        assert "repro_lat_count 4" in text

    def test_namespace_override_and_empty(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert "myapp_c_total 1" in render_prometheus(registry.snapshot(),
                                                      namespace="myapp")
        assert "c_total 1" in render_prometheus(registry.snapshot(),
                                                namespace="")

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_unknown_metric_type_skipped(self):
        text = render_prometheus({"weird": {"type": "mystery", "value": 1}})
        assert text == ""


class TestParse:
    def test_round_trip_registry(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(7)
        registry.gauge("queue.depth").set(3)
        registry.histogram("lat", buckets=(0.5,)).observe(0.1)
        samples = parse_prometheus_text(render_prometheus(registry.snapshot()))
        assert samples[("repro_serve_requests_total", ())] == 7
        assert samples[("repro_queue_depth", ())] == 3
        assert samples[("repro_lat_bucket", (("le", "0.5"),))] == 1
        assert samples[("repro_lat_count", ())] == 1

    def test_inf_values_parse(self):
        samples = parse_prometheus_text('x_bucket{le="+Inf"} 4\n')
        assert samples[("x_bucket", (("le", "+Inf"),))] == 4
        assert parse_prometheus_text("down -Inf\n")[("down", ())] == -math.inf

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("not a metric line at all\n")

    def test_malformed_label_raises(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse_prometheus_text('m{le=unquoted} 1\n')

    def test_unknown_type_comment_raises(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus_text("# TYPE m sparkline\n")

    def test_blank_lines_ignored(self):
        assert parse_prometheus_text("\n\nm 1\n\n") == {("m", ()): 1.0}
