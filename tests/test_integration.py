"""End-to-end integration tests: the full OptInter story on planted data.

These are the tests that tie the reproduction together: on data with known
structure, the two-stage pipeline must (a) run end to end, (b) beat weak
baselines, and (c) keep the planted strong interaction out of the naïve
bucket.
"""

import numpy as np
import pytest

from repro.core import (
    Architecture,
    Method,
    RetrainConfig,
    SearchConfig,
    run_optinter,
)
from repro.data import PairRole, SyntheticConfig, make_dataset
from repro.models import FNN, LogisticRegression
from repro.nn import Adam
from repro.training import Trainer, evaluate_model


@pytest.fixture(scope="module")
def planted():
    """A dataset with one dominant memorizable pair and ample samples."""
    config = SyntheticConfig(
        cardinalities=[12, 10, 8, 15],
        n_samples=6000,
        positive_ratio=0.3,
        n_memorizable=1,
        n_factorizable=1,
        memorize_strength=2.5,
        min_count=1,
        cross_min_count=2,
        seed=11,
    )
    dataset, truth = make_dataset(config)
    train, val, test = dataset.split((0.7, 0.1, 0.2),
                                     rng=np.random.default_rng(0))
    return dataset, truth, train, val, test


class TestEndToEnd:
    def test_pipeline_beats_lr(self, planted):
        _, _, train, val, test = planted
        result = run_optinter(
            train, val,
            SearchConfig(embed_dim=4, cross_embed_dim=3, hidden_dims=(16,),
                         epochs=2, batch_size=256, lr=3e-3, lr_arch=2e-2,
                         seed=0),
            RetrainConfig(embed_dim=4, cross_embed_dim=3, hidden_dims=(16,),
                          epochs=5, batch_size=256, lr=3e-3, seed=1),
        )
        lr_model = LogisticRegression(train.cardinalities,
                                      rng=np.random.default_rng(0))
        Trainer(lr_model, Adam(lr_model.parameters(), lr=5e-2),
                batch_size=256, max_epochs=5,
                rng=np.random.default_rng(0)).fit(train, val)
        auc_optinter = evaluate_model(result.model, test)["auc"]
        auc_lr = evaluate_model(lr_model, test)["auc"]
        assert auc_optinter > auc_lr

    def test_search_keeps_planted_pair_modelled(self, planted):
        _, truth, train, val, _ = planted
        result = run_optinter(
            train, val,
            SearchConfig(embed_dim=4, cross_embed_dim=3, hidden_dims=(16,),
                         epochs=3, batch_size=256, lr=3e-3, lr_arch=2e-2,
                         seed=0))
        strong = truth.pairs_with_role(PairRole.MEMORIZABLE)[0]
        assert result.architecture[strong] is not Method.NAIVE

    def test_selective_memorization_saves_parameters(self, planted):
        """OptInter's model must be smaller than all-memorize (Table V)."""
        from repro.core import build_fixed_model

        _, _, train, val, _ = planted
        result = run_optinter(
            train, val,
            SearchConfig(embed_dim=4, cross_embed_dim=3, hidden_dims=(16,),
                         epochs=2, batch_size=256, lr=3e-3, lr_arch=2e-2,
                         seed=0))
        config = RetrainConfig(embed_dim=4, cross_embed_dim=3,
                               hidden_dims=(16,))
        all_mem = build_fixed_model(
            Architecture.all_memorize(train.num_pairs), train, config)
        if result.architecture.counts()[0] < train.num_pairs:
            assert result.model.num_parameters() < all_mem.num_parameters()

    def test_oracle_architecture_beats_all_naive(self, planted):
        from repro.core import retrain

        _, truth, train, val, test = planted
        methods = tuple(
            Method.MEMORIZE if truth.pair_roles[p] is not PairRole.NOISE
            else Method.NAIVE for p in range(train.num_pairs))
        oracle = Architecture(methods=methods)
        naive = Architecture.all_naive(train.num_pairs)
        config = RetrainConfig(embed_dim=4, cross_embed_dim=3,
                               hidden_dims=(16,), epochs=5, batch_size=256,
                               lr=3e-3, seed=2)
        oracle_model, _ = retrain(oracle, train, val, config)
        naive_model, _ = retrain(naive, train, val, config)
        auc_oracle = evaluate_model(oracle_model, test)["auc"]
        auc_naive = evaluate_model(naive_model, test)["auc"]
        assert auc_oracle > auc_naive

    def test_mi_analysis_consistent_with_truth(self, planted):
        from repro.analysis import pairwise_mutual_information

        dataset, truth, *_ = planted
        scores = pairwise_mutual_information(dataset)
        strong = truth.pairs_with_role(PairRole.MEMORIZABLE)[0]
        noise_pairs = truth.pairs_with_role(PairRole.NOISE)
        assert scores[strong] > np.median(scores[noise_pairs])


class TestReproducibility:
    def test_full_pipeline_deterministic(self, planted):
        _, _, train, val, test = planted
        kwargs = dict(
            search_config=SearchConfig(embed_dim=3, cross_embed_dim=2,
                                       hidden_dims=(8,), epochs=1,
                                       batch_size=512, seed=5),
            retrain_config=RetrainConfig(embed_dim=3, cross_embed_dim=2,
                                         hidden_dims=(8,), epochs=1,
                                         batch_size=512, seed=6),
        )
        a = run_optinter(train, val, **kwargs)
        b = run_optinter(train, val, **kwargs)
        assert list(a.architecture) == list(b.architecture)
        pa = evaluate_model(a.model, test)
        pb = evaluate_model(b.model, test)
        assert pa["auc"] == pb["auc"]
