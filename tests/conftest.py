"""Shared fixtures: tiny synthetic datasets that keep the suite fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticConfig, make_dataset
from repro.data.synthetic import PairRole


@pytest.fixture(scope="session")
def tiny_config() -> SyntheticConfig:
    """A 5-field dataset small enough for sub-second training."""
    return SyntheticConfig(
        cardinalities=[8, 10, 6, 12, 9],
        n_samples=1500,
        positive_ratio=0.3,
        n_memorizable=1,
        n_factorizable=1,
        min_count=1,
        cross_min_count=1,
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_data(tiny_config):
    """(dataset, ground_truth) for the tiny config, with cross features."""
    return make_dataset(tiny_config)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_data):
    return tiny_data[0]


@pytest.fixture(scope="session")
def tiny_truth(tiny_data):
    return tiny_data[1]


@pytest.fixture(scope="session")
def tiny_splits(tiny_dataset):
    """(train, val, test) split of the tiny dataset."""
    return tiny_dataset.split((0.7, 0.1, 0.2), rng=np.random.default_rng(3))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
