"""Wide&Deep decomposition semantics and remaining zoo edge cases."""

import numpy as np
import pytest

from repro.data import Batch
from repro.models import FNN, LogisticRegression, Poly2, WideDeep
from repro.nn import Tensor


class TestWideDeepDecomposition:
    def test_logit_is_wide_plus_deep(self, tiny_dataset, rng):
        """With the deep MLP zeroed, Wide&Deep reduces to its wide part."""
        model = WideDeep(tiny_dataset.cardinalities,
                         tiny_dataset.cross_cardinalities, embed_dim=3,
                         hidden_dims=(8,), rng=rng)
        # Zero the MLP's output layer -> deep contribution vanishes.
        head = model.mlp.net.layers[-1]
        head.weight.data[:] = 0.0
        head.bias.data[:] = 0.0
        batch = tiny_dataset.full_batch()
        logits = model(batch).numpy()
        wide = (model.weights(batch.x).numpy().sum(axis=(1, 2))
                + model.cross_weights(batch.x_cross).numpy().sum(axis=(1, 2))
                + model.bias.data[0])
        np.testing.assert_allclose(logits, wide, rtol=1e-10)

    def test_wide_part_mirrors_poly2(self, tiny_dataset, rng):
        """Wide&Deep's wide component has Poly2's exact parameter layout."""
        wd = WideDeep(tiny_dataset.cardinalities,
                      tiny_dataset.cross_cardinalities, embed_dim=3,
                      hidden_dims=(8,), rng=rng)
        poly = Poly2(tiny_dataset.cardinalities,
                     tiny_dataset.cross_cardinalities, rng=rng)
        assert (wd.cross_weights.table.weight.shape
                == poly.cross_weights.table.weight.shape)
        assert (wd.weights.table.weight.shape
                == poly.weights.table.weight.shape)

    def test_deep_part_mirrors_fnn(self, tiny_dataset, rng):
        wd = WideDeep(tiny_dataset.cardinalities,
                      tiny_dataset.cross_cardinalities, embed_dim=3,
                      hidden_dims=(8,), rng=rng)
        fnn = FNN(tiny_dataset.cardinalities, embed_dim=3, hidden_dims=(8,),
                  rng=rng)
        assert wd.mlp.input_dim == fnn.mlp.input_dim


class TestZooEdgeCases:
    def test_lr_on_single_field(self, rng):
        model = LogisticRegression([7], rng=rng)
        batch = Batch(x=np.array([[0], [3], [6]]), x_cross=None,
                      y=np.zeros(3))
        assert model(batch).shape == (3,)

    def test_batch_of_one(self, tiny_dataset, rng):
        model = FNN(tiny_dataset.cardinalities, embed_dim=3,
                    hidden_dims=(8,), rng=rng)
        batch = Batch(x=tiny_dataset.x[:1], x_cross=None,
                      y=tiny_dataset.y[:1])
        assert model(batch).shape == (1,)

    def test_repeated_forward_is_pure(self, tiny_dataset, rng):
        """Eval-mode forwards have no hidden state; outputs repeat exactly."""
        model = FNN(tiny_dataset.cardinalities, embed_dim=3,
                    hidden_dims=(8,), rng=rng)
        model.eval()
        batch = tiny_dataset.full_batch()
        a = model(batch).numpy().copy()
        b = model(batch).numpy()
        np.testing.assert_array_equal(a, b)

    def test_training_with_dropout_differs_from_eval(self, tiny_dataset):
        from repro.nn.layers import MLP

        mlp = MLP(4, (16,), dropout=0.5, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(32, 4)))
        mlp.train()
        train_out = mlp(x).numpy()
        mlp.eval()
        eval_out = mlp(x).numpy()
        assert not np.allclose(train_out, eval_out)
