"""Shallow models: forward shapes, semantics and learnability."""

import numpy as np
import pytest

from repro.data import Batch
from repro.models import (
    FactorizationMachine,
    FmFM,
    FwFM,
    LogisticRegression,
    Poly2,
)
from repro.nn import Adam, binary_cross_entropy_with_logits
from repro.training import Trainer, evaluate_model


def _batch(dataset, n=8):
    return Batch(x=dataset.x[:n], x_cross=dataset.x_cross[:n],
                 y=dataset.y[:n])


class TestForwardShapes:
    @pytest.mark.parametrize("cls", [LogisticRegression,
                                     FactorizationMachine, FwFM, FmFM])
    def test_logit_shape(self, cls, tiny_dataset, rng):
        if cls is LogisticRegression:
            model = cls(tiny_dataset.cardinalities, rng=rng)
        else:
            model = cls(tiny_dataset.cardinalities, embed_dim=4, rng=rng)
        out = model(_batch(tiny_dataset))
        assert out.shape == (8,)

    def test_poly2_shape(self, tiny_dataset, rng):
        model = Poly2(tiny_dataset.cardinalities,
                      tiny_dataset.cross_cardinalities, rng=rng)
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_poly2_requires_cross(self, tiny_dataset, rng):
        model = Poly2(tiny_dataset.cardinalities,
                      tiny_dataset.cross_cardinalities, rng=rng)
        batch = Batch(x=tiny_dataset.x[:4], x_cross=None,
                      y=tiny_dataset.y[:4])
        with pytest.raises(ValueError):
            model(batch)


class TestFMSemantics:
    def test_fm_second_order_identity(self, rng):
        """FM's O(Md) trick equals the explicit pairwise sum."""
        model = FactorizationMachine([4, 4, 4], embed_dim=3, rng=rng)
        x = np.array([[0, 1, 2]])
        emb = model.latent(x).numpy()[0]  # [3, d]
        explicit = sum(
            float(emb[i] @ emb[j])
            for i in range(3) for j in range(i + 1, 3)
        )
        logit = model(Batch(x=x, x_cross=None, y=np.zeros(1))).item()
        first = model.weights(x).numpy().sum() + model.bias.data[0]
        np.testing.assert_allclose(logit - first, explicit, rtol=1e-8)

    def test_fwfm_zero_weights_reduce_to_lr(self, rng):
        model = FwFM([4, 4], embed_dim=3, rng=rng)
        model.pair_weights.data[:] = 0.0
        x = np.array([[1, 2]])
        logit = model(Batch(x=x, x_cross=None, y=np.zeros(1))).item()
        first = model.weights(x).numpy().sum() + model.bias.data[0]
        np.testing.assert_allclose(logit, first, rtol=1e-10)

    def test_fmfm_identity_matrices_reduce_to_fm(self, rng):
        fmfm = FmFM([4, 4, 4], embed_dim=3, rng=rng)
        fmfm.pair_matrices.data[:] = np.eye(3)
        x = np.array([[0, 1, 2]])
        emb = fmfm.latent(x).numpy()[0]
        explicit = sum(float(emb[i] @ emb[j])
                       for i in range(3) for j in range(i + 1, 3))
        logit = fmfm(Batch(x=x, x_cross=None, y=np.zeros(1))).item()
        first = fmfm.weights(x).numpy().sum() + fmfm.bias.data[0]
        np.testing.assert_allclose(logit - first, explicit, rtol=1e-8)


class TestLearnability:
    def test_lr_learns_main_effects(self, tiny_splits, rng):
        train, val, test = tiny_splits
        model = LogisticRegression(train.cardinalities, rng=rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=5e-2),
                          batch_size=128, max_epochs=6, rng=rng)
        trainer.fit(train, val)
        assert evaluate_model(model, test)["auc"] > 0.55

    def test_poly2_beats_lr_with_memorizable_signal(self, tiny_splits, rng):
        """Poly2 sees crosses; the planted memorizable pair rewards it."""
        train, val, test = tiny_splits
        lr_model = LogisticRegression(train.cardinalities,
                                      rng=np.random.default_rng(0))
        poly = Poly2(train.cardinalities, train.cross_cardinalities,
                     rng=np.random.default_rng(0))
        for model in (lr_model, poly):
            Trainer(model, Adam(model.parameters(), lr=5e-2), batch_size=128,
                    max_epochs=8, rng=np.random.default_rng(1)).fit(train, val)
        auc_lr = evaluate_model(lr_model, test)["auc"]
        auc_poly = evaluate_model(poly, test)["auc"]
        assert auc_poly > auc_lr

    def test_gradients_flow_to_all_parameters(self, tiny_dataset, rng):
        model = FwFM(tiny_dataset.cardinalities, embed_dim=3, rng=rng)
        batch = _batch(tiny_dataset)
        loss = binary_cross_entropy_with_logits(model(batch), batch.y)
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"{name} got no gradient"
