"""Extended zoo: FFM and DCN."""

import numpy as np
import pytest

from repro.data import Batch
from repro.models import DCN, FFM, CrossNetwork, FactorizationMachine
from repro.nn import Adam, Tensor, binary_cross_entropy_with_logits
from repro.training import Trainer, evaluate_model


def _batch(dataset, n=8):
    return Batch(x=dataset.x[:n], x_cross=None, y=dataset.y[:n])


class TestFFM:
    def test_forward_shape(self, tiny_dataset, rng):
        model = FFM(tiny_dataset.cardinalities, embed_dim=3, rng=rng)
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_field_aware_table_is_m_times_fm(self, tiny_dataset, rng):
        m = tiny_dataset.num_fields
        ffm = FFM(tiny_dataset.cardinalities, embed_dim=3, rng=rng)
        fm = FactorizationMachine(tiny_dataset.cardinalities, embed_dim=3,
                                  rng=rng)
        assert (ffm.latent.table.weight.size
                == m * fm.latent.table.weight.size)

    def test_uses_field_specific_vectors(self, rng):
        """Zeroing the vectors for one target field changes only the pairs
        that interact *with* that field."""
        model = FFM([4, 4, 4], embed_dim=2, rng=rng)
        x = np.array([[1, 2, 3]])
        base = model(Batch(x=x, x_cross=None, y=np.zeros(1))).item()
        # Zero field 0's vector aimed at field 1 AND field 1's vector aimed
        # at field 0 -> only the (0,1) pair term vanishes.
        latent = model.latent.table.weight.data
        n_fields, d = 3, 2
        table = latent.reshape(-1, n_fields, d)
        offsets = model.latent.offsets
        table[offsets[0] + 1, 1, :] = 0.0  # e_0^(1) for value 1
        table[offsets[1] + 2, 0, :] = 0.0  # e_1^(0) for value 2
        after = model(Batch(x=x, x_cross=None, y=np.zeros(1))).item()
        assert after != base

    def test_gradients_flow(self, tiny_dataset, rng):
        model = FFM(tiny_dataset.cardinalities, embed_dim=3, rng=rng)
        batch = _batch(tiny_dataset)
        binary_cross_entropy_with_logits(model(batch), batch.y).backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name

    def test_learns(self, tiny_splits, rng):
        train, val, test = tiny_splits
        model = FFM(train.cardinalities, embed_dim=3, rng=rng)
        Trainer(model, Adam(model.parameters(), lr=1e-2), batch_size=256,
                max_epochs=6, rng=rng).fit(train, val)
        assert evaluate_model(model, test)["auc"] > 0.55


class TestCrossNetwork:
    def test_preserves_dimension(self, rng):
        net = CrossNetwork(6, num_layers=3, rng=rng)
        x = Tensor(rng.normal(size=(4, 6)))
        assert net(x).shape == (4, 6)

    def test_zero_weights_identity_plus_bias(self, rng):
        net = CrossNetwork(4, num_layers=1, rng=rng)
        net.weights[0].data[:] = 0.0
        net.biases[0].data[:] = 0.0
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(net(x).numpy(), x.numpy())

    def test_single_layer_formula(self, rng):
        net = CrossNetwork(3, num_layers=1, rng=rng)
        x = rng.normal(size=(2, 3))
        out = net(Tensor(x)).numpy()
        w = net.weights[0].data
        b = net.biases[0].data
        expected = x * (x @ w) + b + x
        np.testing.assert_allclose(out, expected)

    def test_invalid_layers(self, rng):
        with pytest.raises(ValueError):
            CrossNetwork(4, num_layers=0, rng=rng)

    def test_parameters_registered(self, rng):
        net = CrossNetwork(5, num_layers=2, rng=rng)
        assert len(net.parameters()) == 4  # 2 weights + 2 biases


class TestDCN:
    def test_forward_shape(self, tiny_dataset, rng):
        model = DCN(tiny_dataset.cardinalities, embed_dim=4,
                    hidden_dims=(16,), rng=rng)
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_gradients_flow(self, tiny_dataset, rng):
        model = DCN(tiny_dataset.cardinalities, embed_dim=4,
                    hidden_dims=(16,), rng=rng)
        batch = _batch(tiny_dataset)
        binary_cross_entropy_with_logits(model(batch), batch.y).backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name

    def test_learns(self, tiny_splits, rng):
        train, val, test = tiny_splits
        model = DCN(train.cardinalities, embed_dim=4, hidden_dims=(16,),
                    rng=rng)
        Trainer(model, Adam(model.parameters(), lr=3e-3), batch_size=256,
                max_epochs=6, rng=rng).fit(train, val)
        assert evaluate_model(model, test)["auc"] > 0.55


class TestRegistry:
    def test_extended_models_run_in_harness(self, tiny_splits):
        from repro.experiments import (
            EXTENDED_MODELS,
            ExperimentConfig,
            prepare_dataset,
            run_model,
        )

        config = ExperimentConfig(dataset="criteo", n_samples=1500,
                                  embed_dim=4, cross_embed_dim=2,
                                  hidden_dims=(8,), epochs=1,
                                  search_epochs=1, batch_size=256, seed=0)
        bundle = prepare_dataset(config)
        for name in EXTENDED_MODELS:
            row = run_model(name, bundle, config)
            assert 0.0 <= row.auc <= 1.0, name
