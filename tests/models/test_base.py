"""Shared embedding blocks: FieldEmbedding, CrossEmbedding, pair indices."""

import numpy as np
import pytest

from repro.models import (
    CrossEmbedding,
    FieldEmbedding,
    flatten_embeddings,
    pair_index_arrays,
)
from repro.nn import Tensor


class TestFieldEmbedding:
    def test_shape(self, rng):
        emb = FieldEmbedding([5, 7, 3], dim=4, rng=rng)
        out = emb(rng.integers(0, 3, size=(6, 3)))
        assert out.shape == (6, 3, 4)

    def test_fields_use_disjoint_rows(self, rng):
        emb = FieldEmbedding([2, 2], dim=3, rng=rng)
        # Same local id in different fields must give different vectors.
        out = emb(np.array([[1, 1]]))
        assert not np.allclose(out.numpy()[0, 0], out.numpy()[0, 1])

    def test_offsets_cumulative(self, rng):
        emb = FieldEmbedding([5, 7, 3], dim=2, rng=rng)
        np.testing.assert_array_equal(emb.offsets, [0, 5, 12])

    def test_total_table_rows(self, rng):
        emb = FieldEmbedding([5, 7, 3], dim=2, rng=rng)
        assert emb.table.num_embeddings == 15

    def test_wrong_width_rejected(self, rng):
        emb = FieldEmbedding([5, 7], dim=2, rng=rng)
        with pytest.raises(ValueError):
            emb(np.zeros((3, 3), dtype=int))

    def test_gradients_sparse_per_field(self, rng):
        emb = FieldEmbedding([3, 3], dim=2, rng=rng)
        out = emb(np.array([[0, 2]])).sum()
        out.backward()
        grad = emb.table.weight.grad
        touched = np.flatnonzero(np.abs(grad).sum(axis=1))
        np.testing.assert_array_equal(touched, [0, 5])  # id 0 and offset 3+2


class TestCrossEmbedding:
    def test_full_pairs(self, rng):
        emb = CrossEmbedding([4, 6, 5], dim=3, rng=rng)
        out = emb(np.array([[1, 5, 0], [3, 0, 4]]))
        assert out.shape == (2, 3, 3)

    def test_pair_subset_selects_columns(self, rng):
        emb = CrossEmbedding([4, 6, 5], dim=2, pair_subset=[2], rng=rng)
        x_cross = np.array([[1, 5, 3]])
        out = emb(x_cross)
        assert out.shape == (1, 1, 2)
        np.testing.assert_allclose(out.numpy()[0, 0],
                                   emb.table.weight.data[3])

    def test_subset_table_smaller(self, rng):
        full = CrossEmbedding([10, 20, 30], dim=2, rng=rng)
        subset = CrossEmbedding([10, 20, 30], dim=2, pair_subset=[0], rng=rng)
        assert subset.table.num_embeddings < full.table.num_embeddings

    def test_empty_subset_cannot_embed(self, rng):
        emb = CrossEmbedding([4, 4], dim=2, pair_subset=[], rng=rng)
        with pytest.raises(RuntimeError):
            emb(np.zeros((1, 2), dtype=int))


class TestHelpers:
    def test_pair_index_arrays(self):
        idx_i, idx_j = pair_index_arrays(4)
        assert len(idx_i) == 6
        assert (idx_i < idx_j).all()

    def test_flatten_embeddings(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)))
        flat = flatten_embeddings(t)
        assert flat.shape == (2, 12)
        np.testing.assert_array_equal(flat.numpy()[0, :4], t.numpy()[0, 0])
