"""AutoFIS: gated search, GRDA pruning, fixed-mask retrain."""

import numpy as np
import pytest

from repro.data import Batch
from repro.models import AutoFIS, train_autofis
from repro.nn import binary_cross_entropy_with_logits


def _batch(dataset, n=8):
    return Batch(x=dataset.x[:n], x_cross=None, y=dataset.y[:n])


class TestSearchMode:
    def test_forward_shape(self, tiny_dataset, rng):
        model = AutoFIS(tiny_dataset.cardinalities, embed_dim=4,
                        hidden_dims=(8,), rng=rng)
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_gates_start_at_one(self, tiny_dataset, rng):
        model = AutoFIS(tiny_dataset.cardinalities, embed_dim=4, rng=rng)
        np.testing.assert_array_equal(model.gates.data,
                                      np.ones(tiny_dataset.num_pairs))

    def test_gates_receive_gradients(self, tiny_dataset, rng):
        model = AutoFIS(tiny_dataset.cardinalities, embed_dim=4,
                        hidden_dims=(8,), rng=rng)
        batch = _batch(tiny_dataset)
        binary_cross_entropy_with_logits(model(batch), batch.y).backward()
        assert model.gates.grad is not None
        assert np.abs(model.gates.grad).sum() > 0

    def test_selection_counts_format(self, tiny_dataset, rng):
        model = AutoFIS(tiny_dataset.cardinalities, embed_dim=4, rng=rng)
        counts = model.selection_counts()
        assert counts[0] == 0  # AutoFIS never memorizes
        assert sum(counts) == tiny_dataset.num_pairs


class TestFixedMode:
    def test_mask_shape_validated(self, tiny_dataset, rng):
        with pytest.raises(ValueError):
            AutoFIS(tiny_dataset.cardinalities, embed_dim=4,
                    selection=np.ones(3), rng=rng)

    def test_masked_interactions_do_not_contribute(self, tiny_dataset, rng):
        selection = np.zeros(tiny_dataset.num_pairs)
        model = AutoFIS(tiny_dataset.cardinalities, embed_dim=4,
                        hidden_dims=(8,), selection=selection, rng=rng)
        # With an all-zero mask the gated inner products are exactly zero,
        # so perturbing the embedding only matters through the raw part.
        batch = _batch(tiny_dataset)
        out1 = model(batch).numpy()
        assert np.isfinite(out1).all()
        assert model.gates is None

    def test_fixed_mask_not_trainable(self, tiny_dataset, rng):
        selection = np.ones(tiny_dataset.num_pairs)
        model = AutoFIS(tiny_dataset.cardinalities, embed_dim=4,
                        selection=selection, rng=rng)
        names = [n for n, _ in model.named_parameters()]
        assert not any("gates" in n for n in names)


class TestPipeline:
    def test_two_stage_pipeline(self, tiny_splits):
        train, val, test = tiny_splits
        result = train_autofis(train, val, embed_dim=4, hidden_dims=(8,),
                               search_epochs=2, retrain_epochs=2,
                               grda_c=1e-3, seed=0)
        assert result.selection.shape == (train.num_pairs,)
        assert set(np.unique(result.selection)).issubset({0.0, 1.0})
        assert len(result.search_history) == 2
        counts = result.model.selection_counts()
        assert counts[0] == 0
        assert sum(counts) == train.num_pairs

    def test_strong_grda_prunes_most_gates(self, tiny_splits):
        train, val, _ = tiny_splits
        result = train_autofis(train, val, embed_dim=4, hidden_dims=(8,),
                               search_epochs=2, retrain_epochs=1, lr=5e-2,
                               grda_c=20.0, grda_mu=0.9, seed=0)
        kept = int(result.selection.sum())
        # Aggressive regularisation prunes aggressively, but the pipeline
        # guarantees at least one surviving interaction.
        assert 1 <= kept < train.num_pairs
