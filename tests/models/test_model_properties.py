"""Property-based construction sweep over the whole model zoo.

For arbitrary (small) schemas and embedding sizes, every model must build,
produce finite logits of the right shape, expose a positive parameter
count, and backprop a gradient into every parameter.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Architecture, OptInterModel
from repro.data import Batch
from repro.models import (
    DCN,
    DeepFM,
    FactorizationMachine,
    FFM,
    FNN,
    FmFM,
    FwFM,
    IPNN,
    LogisticRegression,
    OPNN,
    PIN,
    Poly2,
    WideDeep,
)
from repro.nn import binary_cross_entropy_with_logits

cardinality_lists = st.lists(st.integers(2, 12), min_size=2, max_size=5)


def _fake_batch(cards, n=6, seed=0, with_cross=True):
    rng = np.random.default_rng(seed)
    x = np.column_stack([rng.integers(0, c, size=n) for c in cards])
    m = len(cards)
    num_pairs = m * (m - 1) // 2
    cross_cards = [5] * num_pairs
    x_cross = rng.integers(0, 5, size=(n, num_pairs)) if with_cross else None
    y = (rng.random(n) > 0.5).astype(float)
    if y.sum() in (0, n):
        y[0] = 1 - y[0]
    return Batch(x=x, x_cross=x_cross, y=y), cross_cards


NO_CROSS_MODELS = [
    ("LR", lambda c, rng: LogisticRegression(c, rng=rng)),
    ("FM", lambda c, rng: FactorizationMachine(c, embed_dim=3, rng=rng)),
    ("FwFM", lambda c, rng: FwFM(c, embed_dim=3, rng=rng)),
    ("FmFM", lambda c, rng: FmFM(c, embed_dim=3, rng=rng)),
    ("FFM", lambda c, rng: FFM(c, embed_dim=2, rng=rng)),
    ("FNN", lambda c, rng: FNN(c, embed_dim=3, hidden_dims=(6,), rng=rng)),
    ("IPNN", lambda c, rng: IPNN(c, embed_dim=3, hidden_dims=(6,), rng=rng)),
    ("OPNN", lambda c, rng: OPNN(c, embed_dim=3, hidden_dims=(6,), rng=rng)),
    ("DeepFM", lambda c, rng: DeepFM(c, embed_dim=3, hidden_dims=(6,),
                                     rng=rng)),
    ("PIN", lambda c, rng: PIN(c, embed_dim=3, hidden_dims=(6,),
                               subnet_hidden=4, subnet_out=2, rng=rng)),
    ("DCN", lambda c, rng: DCN(c, embed_dim=3, hidden_dims=(6,), rng=rng)),
]


class TestZooProperties:
    @pytest.mark.parametrize("name,builder", NO_CROSS_MODELS)
    @given(cards=cardinality_lists)
    @settings(max_examples=8, deadline=None)
    def test_forward_and_backward(self, name, builder, cards):
        rng = np.random.default_rng(0)
        model = builder(cards, rng)
        batch, _ = _fake_batch(cards, with_cross=False)
        logits = model(batch)
        assert logits.shape == (6,), name
        assert np.isfinite(logits.numpy()).all(), name
        assert model.num_parameters() > 0
        loss = binary_cross_entropy_with_logits(logits, batch.y)
        loss.backward()
        for pname, param in model.named_parameters():
            assert param.grad is not None, f"{name}:{pname}"

    @given(cards=cardinality_lists)
    @settings(max_examples=8, deadline=None)
    def test_cross_models(self, cards):
        rng = np.random.default_rng(0)
        batch, cross_cards = _fake_batch(cards)
        for builder in (
            lambda: Poly2(cards, cross_cards, rng=rng),
            lambda: WideDeep(cards, cross_cards, embed_dim=3,
                             hidden_dims=(6,), rng=rng),
        ):
            model = builder()
            logits = model(batch)
            assert logits.shape == (6,)
            assert np.isfinite(logits.numpy()).all()

    @given(cards=cardinality_lists, seed=st.integers(0, 100))
    @settings(max_examples=8, deadline=None)
    def test_optinter_any_architecture(self, cards, seed):
        rng = np.random.default_rng(seed)
        batch, cross_cards = _fake_batch(cards)
        m = len(cards)
        num_pairs = m * (m - 1) // 2
        arch = Architecture.random(num_pairs, rng)
        model = OptInterModel(cards, cross_cards, embed_dim=3,
                              cross_embed_dim=2, hidden_dims=(6,),
                              architecture=arch, rng=rng)
        logits = model(batch)
        assert logits.shape == (6,)
        assert np.isfinite(logits.numpy()).all()

    @given(cards=cardinality_lists)
    @settings(max_examples=6, deadline=None)
    def test_probabilities_in_unit_interval(self, cards):
        rng = np.random.default_rng(1)
        model = FNN(cards, embed_dim=3, hidden_dims=(6,), rng=rng)
        batch, _ = _fake_batch(cards, with_cross=False)
        probs = model.predict_proba(batch)
        assert ((probs > 0) & (probs < 1)).all()
