"""Deep models: shapes, gradient flow, parameter accounting, learnability."""

import numpy as np
import pytest

from repro.data import Batch
from repro.models import DeepFM, FNN, IPNN, OPNN, PIN, WideDeep
from repro.nn import Adam, binary_cross_entropy_with_logits
from repro.training import Trainer, evaluate_model

DEEP_KW = dict(embed_dim=4, hidden_dims=(16, 16))


def _batch(dataset, n=8):
    return Batch(x=dataset.x[:n], x_cross=dataset.x_cross[:n],
                 y=dataset.y[:n])


class TestForward:
    @pytest.mark.parametrize("cls", [FNN, IPNN, OPNN, DeepFM, PIN])
    def test_logit_shape(self, cls, tiny_dataset, rng):
        model = cls(tiny_dataset.cardinalities, rng=rng, **DEEP_KW)
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_widedeep_shape(self, tiny_dataset, rng):
        model = WideDeep(tiny_dataset.cardinalities,
                         tiny_dataset.cross_cardinalities, rng=rng, **DEEP_KW)
        assert model(_batch(tiny_dataset)).shape == (8,)

    def test_widedeep_requires_cross(self, tiny_dataset, rng):
        model = WideDeep(tiny_dataset.cardinalities,
                         tiny_dataset.cross_cardinalities, rng=rng, **DEEP_KW)
        with pytest.raises(ValueError):
            model(Batch(x=tiny_dataset.x[:4], x_cross=None,
                        y=tiny_dataset.y[:4]))

    def test_widedeep_pair_subset(self, tiny_dataset, rng):
        subset = WideDeep(tiny_dataset.cardinalities,
                          tiny_dataset.cross_cardinalities,
                          wide_pairs=[0, 3], rng=rng, **DEEP_KW)
        full = WideDeep(tiny_dataset.cardinalities,
                        tiny_dataset.cross_cardinalities, rng=rng, **DEEP_KW)
        assert subset.num_parameters() < full.num_parameters()
        assert subset(_batch(tiny_dataset)).shape == (8,)

    @pytest.mark.parametrize("cls", [FNN, IPNN, OPNN, DeepFM, PIN])
    def test_gradients_flow_everywhere(self, cls, tiny_dataset, rng):
        model = cls(tiny_dataset.cardinalities, rng=rng, **DEEP_KW)
        batch = _batch(tiny_dataset)
        loss = binary_cross_entropy_with_logits(model(batch), batch.y)
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"{name} got no gradient"


class TestParameterAccounting:
    def test_pin_has_more_params_than_ipnn(self, tiny_dataset, rng):
        """PIN adds per-pair micro networks (paper Table V ordering)."""
        ipnn = IPNN(tiny_dataset.cardinalities, rng=rng, **DEEP_KW)
        pin = PIN(tiny_dataset.cardinalities, rng=rng, **DEEP_KW)
        assert pin.num_parameters() > ipnn.num_parameters()

    def test_lr_smallest(self, tiny_dataset, rng):
        from repro.models import LogisticRegression

        lr_model = LogisticRegression(tiny_dataset.cardinalities, rng=rng)
        fnn = FNN(tiny_dataset.cardinalities, rng=rng, **DEEP_KW)
        assert lr_model.num_parameters() < fnn.num_parameters()

    def test_predict_proba_in_unit_interval(self, tiny_dataset, rng):
        model = DeepFM(tiny_dataset.cardinalities, rng=rng, **DEEP_KW)
        probs = model.predict_proba(_batch(tiny_dataset))
        assert ((probs > 0) & (probs < 1)).all()

    def test_predict_proba_restores_training_mode(self, tiny_dataset, rng):
        model = FNN(tiny_dataset.cardinalities, rng=rng, **DEEP_KW)
        model.train()
        model.predict_proba(_batch(tiny_dataset))
        assert model.training is True


class TestLearnability:
    def test_ipnn_beats_random(self, tiny_splits, rng):
        train, val, test = tiny_splits
        model = IPNN(train.cardinalities, rng=rng, **DEEP_KW)
        Trainer(model, Adam(model.parameters(), lr=3e-3), batch_size=128,
                max_epochs=6, rng=rng).fit(train, val)
        assert evaluate_model(model, test)["auc"] > 0.55

    def test_deterministic_forward(self, tiny_dataset):
        model_a = FNN(tiny_dataset.cardinalities,
                      rng=np.random.default_rng(5), **DEEP_KW)
        model_b = FNN(tiny_dataset.cardinalities,
                      rng=np.random.default_rng(5), **DEEP_KW)
        batch = _batch(tiny_dataset)
        np.testing.assert_allclose(model_a(batch).numpy(),
                                   model_b(batch).numpy())
