"""Mutual information estimation (Eq. 21) and its invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    conditional_entropy,
    fieldwise_mutual_information,
    label_entropy,
    mi_heatmap,
    mutual_information,
    pairwise_mutual_information,
)


class TestLabelEntropy:
    def test_uniform_is_log2(self):
        y = np.array([0, 1, 0, 1], dtype=float)
        np.testing.assert_allclose(label_entropy(y), np.log(2))

    def test_degenerate_is_zero(self):
        assert label_entropy(np.zeros(10)) == 0.0
        assert label_entropy(np.ones(10)) == 0.0

    def test_symmetry(self, rng):
        y = (rng.random(500) > 0.3).astype(float)
        np.testing.assert_allclose(label_entropy(y), label_entropy(1 - y))


class TestConditionalEntropy:
    def test_perfect_predictor_zero(self):
        values = np.array([0, 0, 1, 1])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        np.testing.assert_allclose(conditional_entropy(values, y), 0.0,
                                   atol=1e-12)

    def test_independent_value_keeps_entropy(self, rng):
        y = (rng.random(20_000) > 0.5).astype(float)
        values = np.zeros(20_000, dtype=int)  # constant -> no information
        np.testing.assert_allclose(conditional_entropy(values, y),
                                   label_entropy(y), rtol=1e-10)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            conditional_entropy(np.zeros(3), np.zeros(4))


class TestMutualInformation:
    def test_perfect_predictor_equals_label_entropy(self):
        values = np.array([0, 0, 1, 1, 2, 2])
        y = np.array([0, 0, 1, 1, 0, 0], dtype=float)
        np.testing.assert_allclose(mutual_information(values, y),
                                   label_entropy(y), atol=1e-12)

    def test_independent_near_zero_adjusted(self, rng):
        y = (rng.random(5000) > 0.5).astype(float)
        values = rng.integers(0, 50, size=5000)
        assert mutual_information(values, y, adjusted=True) < 0.005

    def test_adjusted_below_unadjusted(self, rng):
        y = (rng.random(500) > 0.5).astype(float)
        values = rng.integers(0, 100, size=500)
        raw = mutual_information(values, y, adjusted=False)
        adj = mutual_information(values, y, adjusted=True)
        assert adj <= raw

    def test_never_negative(self, rng):
        for _ in range(5):
            y = (rng.random(100) > 0.5).astype(float)
            values = rng.integers(0, 40, size=100)
            assert mutual_information(values, y, adjusted=True) >= 0.0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_bounded_by_label_entropy(self, seed):
        rng = np.random.default_rng(seed)
        y = (rng.random(300) > 0.4).astype(float)
        values = rng.integers(0, 10, size=300)
        assert (mutual_information(values, y)
                <= label_entropy(y) + 1e-12)

    def test_relabeling_invariance(self, rng):
        """MI depends on the partition, not the value names."""
        y = (rng.random(400) > 0.5).astype(float)
        values = rng.integers(0, 8, size=400)
        perm = rng.permutation(8)
        np.testing.assert_allclose(mutual_information(values, y),
                                   mutual_information(perm[values], y),
                                   rtol=1e-10)


class TestPairwiseMI:
    def test_shapes(self, tiny_dataset):
        scores = pairwise_mutual_information(tiny_dataset)
        assert scores.shape == (tiny_dataset.num_pairs,)
        assert (scores >= 0).all()

    def test_planted_pair_ranks_high(self, tiny_dataset, tiny_truth):
        from repro.data import PairRole

        scores = pairwise_mutual_information(tiny_dataset)
        planted = tiny_truth.pairs_with_role(PairRole.MEMORIZABLE)[0]
        rank = (scores > scores[planted]).sum()
        assert rank < tiny_dataset.num_pairs // 3

    def test_without_cross_ids(self, tiny_dataset):
        direct = pairwise_mutual_information(tiny_dataset,
                                             use_cross_ids=False)
        assert direct.shape == (tiny_dataset.num_pairs,)

    def test_fieldwise_shape(self, tiny_dataset):
        scores = fieldwise_mutual_information(tiny_dataset)
        assert scores.shape == (tiny_dataset.num_fields,)


class TestHeatmap:
    def test_symmetric_zero_diagonal(self, tiny_dataset):
        heat = mi_heatmap(tiny_dataset)
        np.testing.assert_array_equal(heat, heat.T)
        np.testing.assert_array_equal(np.diag(heat),
                                      np.zeros(tiny_dataset.num_fields))

    def test_matches_pair_scores(self, tiny_dataset):
        scores = pairwise_mutual_information(tiny_dataset)
        heat = mi_heatmap(tiny_dataset, scores)
        for p, (i, j) in enumerate(tiny_dataset.schema.pairs()):
            assert heat[i, j] == scores[p]
