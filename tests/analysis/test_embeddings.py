"""Embedding diagnostics: norms, frequencies, drift."""

import numpy as np
import pytest

from repro.analysis import (
    cross_embedding_report,
    drift_from_initialization,
    embedding_norms,
    field_embedding_report,
    norm_frequency_report,
    value_frequencies,
)


class TestBasics:
    def test_embedding_norms(self):
        table = np.array([[3.0, 4.0], [0.0, 0.0]])
        np.testing.assert_allclose(embedding_norms(table), [5.0, 0.0])

    def test_norms_require_2d(self):
        with pytest.raises(ValueError):
            embedding_norms(np.zeros(4))

    def test_value_frequencies(self):
        freqs = value_frequencies(np.array([0, 1, 1, 3]), vocab_size=5)
        np.testing.assert_allclose(freqs, [1, 2, 0, 1, 0])

    def test_frequencies_range_check(self):
        with pytest.raises(ValueError):
            value_frequencies(np.array([5]), vocab_size=5)

    def test_drift(self):
        a = np.zeros((2, 2))
        b = np.array([[3.0, 4.0], [0.0, 0.0]])
        np.testing.assert_allclose(drift_from_initialization(b, a), [5.0, 0.0])

    def test_drift_shape_mismatch(self):
        with pytest.raises(ValueError):
            drift_from_initialization(np.zeros((2, 2)), np.zeros((3, 2)))


class TestNormFrequencyReport:
    def test_positive_correlation_detected(self, rng):
        # Construct a table whose norms literally are the frequencies.
        freqs = rng.integers(0, 50, size=30)
        ids = np.repeat(np.arange(30), freqs)
        table = np.zeros((30, 2))
        table[:, 0] = freqs
        report = norm_frequency_report(table, ids)
        assert report.correlation > 0.9

    def test_constant_table_zero_correlation(self, rng):
        table = np.ones((10, 3))
        ids = rng.integers(0, 10, size=100)
        assert norm_frequency_report(table, ids).correlation == 0.0

    def test_invalid_quantile(self, rng):
        with pytest.raises(ValueError):
            norm_frequency_report(np.ones((4, 2)), np.zeros(3, dtype=int),
                                  frequent_quantile=1.0)


class TestOnTrainedModels:
    def test_trained_embeddings_track_frequency(self, tiny_splits):
        """After training, frequent values drift more than unseen ones."""
        from repro.models import FNN
        from repro.nn import Adam
        from repro.training import Trainer

        train, val, _ = tiny_splits
        model = FNN(train.cardinalities, embed_dim=4, hidden_dims=(16,),
                    rng=np.random.default_rng(0))
        initial = model.embedding.table.weight.data.copy()
        Trainer(model, Adam(model.parameters(), lr=1e-2), batch_size=256,
                max_epochs=5, rng=np.random.default_rng(1)).fit(train, val)
        drift = drift_from_initialization(model.embedding.table.weight.data,
                                          initial)
        shifted = train.x + model.embedding.offsets[None, :]
        freqs = value_frequencies(shifted, vocab_size=drift.shape[0])
        seen = freqs > 0
        if (~seen).any():
            assert drift[seen].mean() > drift[~seen].mean()

    def test_field_report_runs(self, tiny_splits):
        from repro.models import FNN

        train, *_ = tiny_splits
        model = FNN(train.cardinalities, embed_dim=4, hidden_dims=(8,),
                    rng=np.random.default_rng(0))
        report = field_embedding_report(model.embedding, train)
        assert -1.0 <= report.correlation <= 1.0
        assert "rho" in report.render()

    def test_cross_report_requires_cross(self, tiny_splits):
        from repro.models import CrossEmbedding
        from repro.data import CTRDataset

        train, *_ = tiny_splits
        emb = CrossEmbedding(train.cross_cardinalities, dim=2,
                             rng=np.random.default_rng(0))
        no_cross = CTRDataset(schema=train.schema, x=train.x, y=train.y,
                              cardinalities=train.cardinalities)
        with pytest.raises(ValueError):
            cross_embedding_report(emb, no_cross)

    def test_cross_report_on_subset(self, tiny_splits):
        from repro.models import CrossEmbedding

        train, *_ = tiny_splits
        emb = CrossEmbedding(train.cross_cardinalities, dim=2,
                             pair_subset=[0, 3],
                             rng=np.random.default_rng(0))
        report = cross_embedding_report(emb, train)
        assert report.n_frequent + report.n_rare == emb.table.num_embeddings
