"""Calibration metrics: Brier, reliability bins, ECE, CTR bias."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    brier_score,
    expected_calibration_error,
    predicted_ctr_bias,
    reliability_bins,
)


def _well_calibrated(n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    probs = rng.random(n)
    y = (rng.random(n) < probs).astype(float)
    return y, probs


class TestBrier:
    def test_perfect_prediction_zero(self):
        y = np.array([1.0, 0.0, 1.0])
        assert brier_score(y, y) == 0.0

    def test_worst_prediction_one(self):
        y = np.array([1.0, 0.0])
        assert brier_score(y, 1 - y) == 1.0

    def test_constant_half(self):
        y = np.array([1.0, 0.0, 1.0, 0.0])
        assert brier_score(y, np.full(4, 0.5)) == 0.25

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            brier_score(np.array([1.0]), np.array([1.5]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            brier_score(np.ones(3), np.ones(2))


class TestReliabilityBins:
    def test_bin_count_and_coverage(self):
        y, probs = _well_calibrated()
        bins = reliability_bins(y, probs, num_bins=10)
        assert len(bins) == 10
        assert sum(b.count for b in bins) == len(y)

    def test_well_calibrated_bins_have_small_gap(self):
        y, probs = _well_calibrated()
        bins = reliability_bins(y, probs, num_bins=10)
        for b in bins:
            assert b.gap < 0.03

    def test_probability_one_lands_in_last_bin(self):
        bins = reliability_bins(np.array([1.0]), np.array([1.0]),
                                num_bins=5)
        assert bins[-1].count == 1

    def test_empty_bin_gap_zero(self):
        bins = reliability_bins(np.array([1.0]), np.array([0.95]),
                                num_bins=10)
        assert bins[0].count == 0
        assert bins[0].gap == 0.0

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            reliability_bins(np.array([1.0]), np.array([0.5]), num_bins=0)


class TestECE:
    def test_well_calibrated_near_zero(self):
        y, probs = _well_calibrated()
        assert expected_calibration_error(y, probs) < 0.01

    def test_overconfident_has_large_ece(self):
        rng = np.random.default_rng(0)
        y = (rng.random(5000) < 0.5).astype(float)
        # Predicts near-certainty while the truth is a coin flip.
        probs = np.where(rng.random(5000) < 0.5, 0.99, 0.01)
        assert expected_calibration_error(y, probs) > 0.3

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_bounded_by_one(self, seed):
        rng = np.random.default_rng(seed)
        y = (rng.random(200) < 0.4).astype(float)
        probs = rng.random(200)
        ece = expected_calibration_error(y, probs)
        assert 0.0 <= ece <= 1.0


class TestCTRBias:
    def test_unbiased_is_one(self):
        y, probs = _well_calibrated()
        assert abs(predicted_ctr_bias(y, probs) - 1.0) < 0.02

    def test_overprediction_above_one(self):
        y = np.array([0.0, 0.0, 1.0, 0.0])
        probs = np.full(4, 0.9)
        assert predicted_ctr_bias(y, probs) > 1.0

    def test_no_positives_rejected(self):
        with pytest.raises(ValueError):
            predicted_ctr_bias(np.zeros(5), np.full(5, 0.1))


class TestOnModels:
    def test_calibration_of_trained_model(self, tiny_splits, rng):
        from repro.models import LogisticRegression
        from repro.nn import Adam
        from repro.training import Trainer, predict_dataset

        train, val, test = tiny_splits
        model = LogisticRegression(train.cardinalities, rng=rng)
        Trainer(model, Adam(model.parameters(), lr=5e-2), batch_size=256,
                max_epochs=6, rng=rng).fit(train, val)
        probs = predict_dataset(model, test)
        ece = expected_calibration_error(test.y, probs)
        bias = predicted_ctr_bias(test.y, probs)
        assert ece < 0.2
        assert 0.5 < bias < 2.0
