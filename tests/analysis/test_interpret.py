"""Interpretability: Fig. 5 groupings, Fig. 6 maps and correlation."""

import numpy as np
import pytest

from repro.analysis import (
    case_study,
    method_map,
    mi_by_method,
    mi_method_correlation,
)
from repro.core import Architecture, Method


class TestMIByMethod:
    def test_groups_cover_all_pairs(self, tiny_dataset, rng):
        arch = Architecture.random(tiny_dataset.num_pairs, rng)
        report = mi_by_method(tiny_dataset, arch)
        assert sum(report.counts.values()) == tiny_dataset.num_pairs

    def test_empty_group_is_nan(self, tiny_dataset):
        arch = Architecture.all_memorize(tiny_dataset.num_pairs)
        report = mi_by_method(tiny_dataset, arch)
        assert np.isnan(report.mean_mi[Method.NAIVE])
        assert not np.isnan(report.mean_mi[Method.MEMORIZE])

    def test_oracle_architecture_orders_mi(self, tiny_dataset, tiny_truth):
        """Assign memorize to planted pairs -> highest group MI (Fig. 5)."""
        from repro.data import PairRole

        methods = []
        for p in range(tiny_dataset.num_pairs):
            role = tiny_truth.pair_roles[p]
            methods.append(Method.MEMORIZE if role is PairRole.MEMORIZABLE
                           else Method.FACTORIZE
                           if role is PairRole.FACTORIZABLE
                           else Method.NAIVE)
        arch = Architecture(methods=tuple(methods))
        report = mi_by_method(tiny_dataset, arch)
        assert report.mean_mi[Method.MEMORIZE] > report.mean_mi[Method.NAIVE]

    def test_pair_count_mismatch_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            mi_by_method(tiny_dataset, Architecture.all_naive(3))

    def test_as_rows_format(self, tiny_dataset, rng):
        arch = Architecture.random(tiny_dataset.num_pairs, rng)
        rows = mi_by_method(tiny_dataset, arch).as_rows()
        assert [r[0] for r in rows] == ["memorize", "factorize", "naive"]


class TestMethodMap:
    def test_symmetric_with_negative_diagonal(self, tiny_dataset, rng):
        arch = Architecture.random(tiny_dataset.num_pairs, rng)
        codes = method_map(tiny_dataset, arch)
        np.testing.assert_array_equal(codes, codes.T)
        np.testing.assert_array_equal(np.diag(codes),
                                      -np.ones(tiny_dataset.num_fields))

    def test_codes_match_architecture(self, tiny_dataset):
        arch = Architecture.all_memorize(tiny_dataset.num_pairs)
        codes = method_map(tiny_dataset, arch)
        off_diag = codes[~np.eye(tiny_dataset.num_fields, dtype=bool)]
        assert (off_diag == 2).all()


class TestCorrelation:
    def test_uniform_architecture_zero(self, tiny_dataset):
        arch = Architecture.all_memorize(tiny_dataset.num_pairs)
        assert mi_method_correlation(tiny_dataset, arch) == 0.0

    def test_oracle_positive(self, tiny_dataset, tiny_truth):
        from repro.data import PairRole

        methods = []
        for p in range(tiny_dataset.num_pairs):
            role = tiny_truth.pair_roles[p]
            methods.append(Method.MEMORIZE if role is not PairRole.NOISE
                           else Method.NAIVE)
        arch = Architecture(methods=tuple(methods))
        assert mi_method_correlation(tiny_dataset, arch) > 0.0

    def test_anti_oracle_negative(self, tiny_dataset, tiny_truth):
        from repro.data import PairRole

        methods = []
        for p in range(tiny_dataset.num_pairs):
            role = tiny_truth.pair_roles[p]
            methods.append(Method.NAIVE if role is not PairRole.NOISE
                           else Method.MEMORIZE)
        arch = Architecture(methods=tuple(methods))
        assert mi_method_correlation(tiny_dataset, arch) < 0.0


class TestCaseStudy:
    def test_bundle_contents(self, tiny_dataset, rng):
        arch = Architecture.random(tiny_dataset.num_pairs, rng)
        study = case_study(tiny_dataset, arch)
        m = tiny_dataset.num_fields
        assert study.mi_map.shape == (m, m)
        assert study.method_codes.shape == (m, m)
        assert -1.0 <= study.correlation <= 1.0
